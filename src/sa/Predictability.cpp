//===- sa/Predictability.cpp ----------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sa/Predictability.h"

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "predict/StaticHeuristics.h"
#include "sa/Passes.h"

#include <cmath>
#include <string>

using namespace bpcr;
using namespace bpcr::sa;

namespace {

constexpr const char *PassId = "predictability";

/// Last write to \p R in \p BB strictly before instruction \p Before, or
/// nullptr (the value flows in from outside the block).
const Instruction *localDef(const BasicBlock &BB, size_t Before, Reg R) {
  for (size_t I = Before; I-- > 0;) {
    const Instruction &Inst = BB.Insts[I];
    if (writesRegister(Inst.Op) && Inst.Dst == R)
      return &Inst;
  }
  return nullptr;
}

/// Walks the in-block def chain of \p Op (bounded depth) and reports
/// whether it reaches a Load/Call (data-dependent) or an And-with-1 parity
/// of some register (alternating candidate; *ParityReg receives it).
struct ChainFacts {
  bool DataDependent = false;
  bool Parity = false;
  Reg ParityReg = 0;
};

void walkChain(const BasicBlock &BB, size_t Before, const Operand &Op,
               unsigned Depth, ChainFacts &Facts) {
  if (Depth == 0 || !Op.isReg())
    return;
  const Instruction *Def = localDef(BB, Before, Op.asReg());
  if (!Def)
    return;
  size_t DefIdx = static_cast<size_t>(Def - BB.Insts.data());
  if (Def->Op == Opcode::Load || Def->Op == Opcode::Call) {
    Facts.DataDependent = true;
    return;
  }
  if (Def->Op == Opcode::And &&
      ((Def->B.isImm() && Def->B.Val == 1 && Def->A.isReg()) ||
       (Def->A.isImm() && Def->A.Val == 1 && Def->B.isReg()))) {
    Facts.Parity = true;
    Facts.ParityReg = Def->B.isImm() ? Def->A.asReg() : Def->B.asReg();
    return;
  }
  walkChain(BB, DefIdx, Def->A, Depth - 1, Facts);
  walkChain(BB, DefIdx, Def->B, Depth - 1, Facts);
  if (Def->Op == Opcode::Call)
    return;
}

/// True when \p R is stepped by a constant-1 Add somewhere in loop \p L of
/// \p F — the induction shape whose parity genuinely alternates.
bool steppedByOne(const Function &F, const Loop &L, Reg R) {
  for (uint32_t B : L.Blocks)
    for (const Instruction &I : F.Blocks[B].Insts)
      if (I.Op == Opcode::Add && I.Dst == R &&
          ((I.A.isReg() && I.A.asReg() == R && I.B.isImm() &&
            I.B.Val == 1) ||
           (I.B.isReg() && I.B.asReg() == R && I.A.isImm() &&
            I.A.Val == 1)))
        return true;
  return false;
}

/// Constant step added to \p R inside loop \p L when there is exactly one
/// such update; 0 when absent or ambiguous.
int64_t inductionStep(const Function &F, const Loop &L, Reg R) {
  int64_t Step = 0;
  int Count = 0;
  for (uint32_t B : L.Blocks)
    for (const Instruction &I : F.Blocks[B].Insts) {
      if (!writesRegister(I.Op) || I.Dst != R)
        continue;
      if (I.Op == Opcode::Add && I.A.isReg() && I.A.asReg() == R &&
          I.B.isImm()) {
        Step = I.B.Val;
        ++Count;
      } else if (I.Op == Opcode::Sub && I.A.isReg() && I.A.asReg() == R &&
                 I.B.isImm()) {
        Step = -I.B.Val;
        ++Count;
      } else {
        return 0; // some other write: not a simple induction
      }
    }
  return Count == 1 ? Step : 0;
}

/// Constant initial value of \p R on entry to loop \p L: the last write in
/// the closest dominating block outside the loop must be a movImm.
bool inductionInit(const Function &F, const CFG &G, const Loop &L, Reg R,
                   int64_t &Init) {
  // Scan predecessors of the header that are outside the loop.
  for (uint32_t P : G.predecessors(L.Header)) {
    if (L.contains(P))
      continue;
    const Instruction *Def =
        localDef(F.Blocks[P], F.Blocks[P].Insts.size(), R);
    if (!Def || Def->Op != Opcode::Mov || !Def->A.isImm())
      return false;
    Init = Def->A.Val;
  }
  return true;
}

} // namespace

const char *sa::predictabilityClassName(PredictabilityClass C) {
  switch (C) {
  case PredictabilityClass::ProvenUnidirectional:
    return "proven-unidirectional";
  case PredictabilityClass::LoopExitBounded:
    return "loop-exit-bounded";
  case PredictabilityClass::Alternating:
    return "alternating";
  case PredictabilityClass::DataDependent:
    return "data-dependent";
  case PredictabilityClass::Mixed:
    return "mixed";
  }
  return "mixed";
}

std::vector<BranchPredictability>
sa::classifyPredictability(const Module &M, const BranchProofs &Proofs) {
  std::vector<BranchPredictability> Out(M.conditionalBranchCount());
  StaticPredictions BL = predictBallLarus(M);

  for (uint32_t FI = 0; FI < M.Functions.size(); ++FI) {
    const Function &F = M.Functions[FI];
    if (!isCfgBuildable(F))
      continue;
    CFG G(F);
    Dominators Dom(G);
    LoopInfo LI(G, Dom);

    for (uint32_t B = 0; B < F.Blocks.size(); ++B) {
      const BasicBlock &BB = F.Blocks[B];
      const Instruction &T = BB.terminator();
      if (T.Op != Opcode::Br || T.BranchId < 0 ||
          static_cast<size_t>(T.BranchId) >= Out.size())
        continue;
      BranchPredictability &P = Out[static_cast<size_t>(T.BranchId)];
      P.BranchId = T.BranchId;
      P.FuncIdx = FI;
      P.BlockIdx = B;
      if (static_cast<size_t>(T.BranchId) < BL.size())
        P.Heuristic = BL[static_cast<size_t>(T.BranchId)];

      // 1. Proofs win outright.
      Prediction Proved = Proofs.dirOf(T.BranchId);
      if (Proved != Prediction::Unknown) {
        P.Class = PredictabilityClass::ProvenUnidirectional;
        P.ProvedDir = Proved;
        P.ExpectedMispredictBound = 0.0;
        P.HeuristicDisagrees =
            P.Heuristic != Prediction::Unknown && P.Heuristic != Proved;
        continue;
      }

      ChainFacts Facts;
      size_t TermIdx = BB.Insts.size() - 1;
      walkChain(BB, TermIdx, T.A, 4, Facts);

      int32_t LoopIdx = LI.innermostLoop(B);
      const Loop *L =
          LoopIdx >= 0 ? &LI.loops()[static_cast<size_t>(LoopIdx)] : nullptr;

      // 2. Loop exit with an inferable trip bound: condition is a compare
      // of a recognized induction register against a constant.
      if (L) {
        bool Exits = false;
        if (!L->contains(T.TrueTarget) || !L->contains(T.FalseTarget))
          Exits = true;
        const Instruction *CondDef =
            T.A.isReg() ? localDef(BB, TermIdx, T.A.asReg()) : nullptr;
        if (Exits && CondDef && isCompare(CondDef->Op) &&
            CondDef->A.isReg() && CondDef->B.isImm()) {
          Reg Ind = CondDef->A.asReg();
          int64_t Step = inductionStep(F, *L, Ind);
          int64_t Init = 0;
          if (Step != 0 && inductionInit(F, G, *L, Ind, Init)) {
            int64_t Span = CondDef->B.Val - Init;
            if ((Step > 0 && Span >= 0) || (Step < 0 && Span <= 0)) {
              int64_t Trip = Step == 0 ? 0 : Span / Step;
              if (Trip > 0) {
                P.Class = PredictabilityClass::LoopExitBounded;
                P.TripBound = Trip;
                P.ExpectedMispredictBound =
                    1.0 / static_cast<double>(Trip);
                continue;
              }
            }
          }
        }

        // 3. Parity of an induction register stepping by one: alternates.
        if (Facts.Parity && steppedByOne(F, *L, Facts.ParityReg)) {
          P.Class = PredictabilityClass::Alternating;
          P.ExpectedMispredictBound = 0.5;
          continue;
        }
      }

      // 4. Condition computed from memory or a call result.
      if (Facts.DataDependent) {
        P.Class = PredictabilityClass::DataDependent;
        P.ExpectedMispredictBound = 0.5;
        continue;
      }

      P.Class = PredictabilityClass::Mixed;
      P.ExpectedMispredictBound = 0.5;
    }
  }
  return Out;
}

std::vector<BranchPredictability>
sa::classifyPredictability(const Module &M) {
  return classifyPredictability(M, computeBranchProofs(M));
}

// -- Pass --------------------------------------------------------------------

namespace {

class PredictabilityPass : public FunctionPass {
public:
  const char *id() const override { return PassId; }
  const char *description() const override {
    return "per-branch predictability class (proven / loop-exit-bounded / "
           "alternating / data-dependent) with expected-misprediction "
           "bounds, cross-checked against the Ball-Larus heuristic chain";
  }

  void runOnFunction(const Module &M, uint32_t FI,
                     std::vector<Diagnostic> &Out) const override {
    const Function &F = M.Functions[FI];
    if (!isCfgBuildable(F))
      return;
    // Classification is per function; restricting the module-level API to
    // one function keeps the pass parallelizable with per-function slots.
    // predictBallLarus is module-wide but pure, so recomputing it per
    // function only costs time, never determinism.
    std::vector<BranchPredictability> All = classifyPredictability(M);
    CFG G(F);

    for (const BranchPredictability &P : All) {
      if (P.BranchId < 0 || P.FuncIdx != FI)
        continue;
      if (!G.isReachable(P.BlockIdx))
        continue;
      const BasicBlock &BB = F.Blocks[P.BlockIdx];
      Location Loc;
      Loc.FuncIdx = static_cast<int32_t>(FI);
      Loc.FuncName = F.Name;
      Loc.BlockIdx = static_cast<int32_t>(P.BlockIdx);
      Loc.BlockName = BB.Name;
      Loc.InstIdx = static_cast<int32_t>(BB.Insts.size() - 1);

      if (P.Class == PredictabilityClass::ProvenUnidirectional &&
          P.HeuristicDisagrees) {
        Out.push_back(makeDiag(
            Severity::Note, PassId, "heuristic-disagreement", Loc,
            std::string("branch is proven ") +
                (P.ProvedDir == Prediction::Taken ? "always-taken"
                                                  : "never-taken") +
                " but the Ball-Larus chain predicts the opposite "
                "direction (it would mispredict every execution)"));
      } else if (P.Class == PredictabilityClass::Alternating) {
        Out.push_back(makeDiag(
            Severity::Note, PassId, "alternating", Loc,
            "branch condition is the parity of a unit-step induction "
            "register: a profile majority mispredicts about half the "
            "executions, a 2-state intra-loop machine removes them"));
      }
    }
  }
};

} // namespace

std::unique_ptr<Pass> sa::createPredictabilityPass() {
  return std::make_unique<PredictabilityPass>();
}
