//===- sa/ProfileVerify.cpp -----------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sa/ProfileVerify.h"

#include "analysis/CFG.h"
#include "sa/Passes.h"
#include "trace/ColumnarTrace.h"

#include <array>
#include <optional>
#include <string>

using namespace bpcr;
using namespace bpcr::sa;

namespace {

constexpr const char *PassId = "profile-verify";

Location funcLoc(const Module &M, uint32_t FI) {
  Location Loc;
  Loc.FuncIdx = static_cast<int32_t>(FI);
  Loc.FuncName = M.Functions[FI].Name;
  return Loc;
}

Location blockLoc(const Module &M, uint32_t FI, uint32_t B) {
  Location Loc = funcLoc(M, FI);
  Loc.BlockIdx = static_cast<int32_t>(B);
  Loc.BlockName = M.Functions[FI].Blocks[B].Name;
  return Loc;
}

/// Flow inference over one function. Edge and block counts form the flat
/// lattice Unknown < Known(n); contradictions become diagnostics instead
/// of a Conflict element so every violation is reported at its block.
struct FunctionFlow {
  const Module &M;
  const Function &F;
  uint32_t FI;
  const CFG G;
  const BranchProfileCounts &P;
  const ProfileVerifyOptions &Opts;
  std::vector<Diagnostic> &Out;

  /// Inferred terminator executions per block.
  std::vector<std::optional<uint64_t>> Exec;
  /// Inferred count per (block, successor-slot). Br blocks have slot 0 =
  /// taken edge, slot 1 = fallthrough (collapsed to one slot when both
  /// targets coincide); Jmp blocks have slot 0.
  std::vector<std::array<std::optional<uint64_t>, 2>> EdgeOut;
  /// One report per (rule, block) so fixpoint rounds never duplicate.
  std::vector<uint8_t> ReportedMismatch;
  std::vector<uint8_t> ReportedTail;

  FunctionFlow(const Module &M, uint32_t FI, const BranchProfileCounts &P,
               const ProfileVerifyOptions &Opts, std::vector<Diagnostic> &Out)
      : M(M), F(M.Functions[FI]), FI(FI), G(F), P(P), Opts(Opts), Out(Out) {
    Exec.assign(F.Blocks.size(), std::nullopt);
    EdgeOut.assign(F.Blocks.size(), {std::nullopt, std::nullopt});
    ReportedMismatch.assign(F.Blocks.size(), 0);
    ReportedTail.assign(F.Blocks.size(), 0);
  }

  bool isEntryFunction() const { return FI == M.EntryFunction; }

  const BranchCounts *countsFor(const Instruction &T) const {
    if (T.BranchId < 0 || static_cast<size_t>(T.BranchId) >= P.Counts.size())
      return nullptr;
    return &P.Counts[static_cast<size_t>(T.BranchId)];
  }

  void seed() {
    for (uint32_t B = 0; B < F.Blocks.size(); ++B) {
      const Instruction &T = F.Blocks[B].terminator();
      if (T.Op != Opcode::Br)
        continue;
      const BranchCounts *C = countsFor(T);
      if (!C)
        continue;
      if (!G.isReachable(B)) {
        if (C->total() > 0)
          Out.push_back(makeDiag(
              Severity::Error, PassId, "unreachable-execution",
              blockLoc(M, FI, B),
              "branch #" + std::to_string(T.BranchId) + " recorded " +
                  std::to_string(C->total()) +
                  " executions but its block is unreachable from the "
                  "function entry"));
        continue;
      }
      Exec[B] = C->total();
      if (T.TrueTarget == T.FalseTarget) {
        EdgeOut[B][0] = C->total();
      } else {
        EdgeOut[B][0] = C->Taken;
        EdgeOut[B][1] = C->NotTaken;
      }
    }
  }

  /// Sum of known in-edge counts of \p B; nullopt when any is unknown.
  /// Adds EntryExecutions for the entry function's entry block.
  std::optional<uint64_t> inFlow(uint32_t B) const {
    uint64_t Sum = 0;
    if (B == 0) {
      if (!isEntryFunction())
        return std::nullopt; // call count unknown
      Sum = Opts.EntryExecutions;
    }
    for (uint32_t Pred : G.predecessors(B)) {
      if (!G.isReachable(Pred))
        continue;
      const Instruction &T = F.Blocks[Pred].terminator();
      uint64_t EdgeSum = 0;
      bool Known = false;
      if (T.Op == Opcode::Br && T.TrueTarget != T.FalseTarget) {
        // A block can reach B through its taken edge, fallthrough edge or
        // (pathologically) both; sum the slots that target B.
        if (T.TrueTarget == B && EdgeOut[Pred][0]) {
          EdgeSum += *EdgeOut[Pred][0];
          Known = true;
        }
        if (T.FalseTarget == B && EdgeOut[Pred][1]) {
          EdgeSum += *EdgeOut[Pred][1];
          Known = true;
        }
        if ((T.TrueTarget == B && !EdgeOut[Pred][0]) ||
            (T.FalseTarget == B && !EdgeOut[Pred][1]))
          return std::nullopt;
      } else {
        if (!EdgeOut[Pred][0])
          return std::nullopt;
        EdgeSum = *EdgeOut[Pred][0];
        Known = true;
      }
      if (Known)
        Sum += EdgeSum;
    }
    return Sum;
  }

  void reportMismatch(uint32_t B, uint64_t In, uint64_t ExecCount) {
    const char *Rule = B == 0 && isEntryFunction() ? "entry-flow-mismatch"
                                                   : "flow-mismatch";
    bool Tail = In > ExecCount;
    if (Tail && !Opts.Strict) {
      if (ReportedTail[B])
        return;
      ReportedTail[B] = 1;
      Out.push_back(makeDiag(
          Severity::Note, PassId, "truncated-tail", blockLoc(M, FI, B),
          "block entered " + std::to_string(In) +
              " times but its branch executed " + std::to_string(ExecCount) +
              "; consistent with a trace cut off mid-run (strict mode "
              "reports this as a flow mismatch)"));
      return;
    }
    if (ReportedMismatch[B])
      return;
    ReportedMismatch[B] = 1;
    Out.push_back(makeDiag(
        Severity::Error, PassId, Rule, blockLoc(M, FI, B),
        "flow conservation violated: in-flow " + std::to_string(In) +
            " vs " + std::to_string(ExecCount) +
            " recorded executions of the block's terminator"));
  }

  void solve() {
    seed();
    // Deterministic round-based fixpoint: each round scans blocks in index
    // order; a round without changes ends the loop. Each round either
    // fixes at least one unknown or stops, so rounds <= blocks + 1.
    bool Changed = true;
    size_t Rounds = 0;
    while (Changed && Rounds++ <= F.Blocks.size() + 1) {
      Changed = false;
      for (uint32_t B : G.reversePostOrder()) {
        const Instruction &T = F.Blocks[B].terminator();
        // Infer block execution from in-flow.
        std::optional<uint64_t> In = inFlow(B);
        if (In) {
          if (!Exec[B]) {
            // Ret blocks and (under truncation) every block may execute
            // their terminator less often than they are entered; the
            // inferred entry count still bounds and, for complete flows,
            // determines it.
            Exec[B] = *In;
            Changed = true;
          } else if (*Exec[B] != *In) {
            reportMismatch(B, *In, *Exec[B]);
          }
        }
        // Jmp blocks forward their execution count on their single edge.
        if (T.Op == Opcode::Jmp && Exec[B] && !EdgeOut[B][0]) {
          EdgeOut[B][0] = *Exec[B];
          Changed = true;
        }
      }
    }

    // Entry/exit balance: when every return block's count is known, the
    // entry function must leave exactly as often as it enters.
    if (isEntryFunction()) {
      uint64_t Returns = 0;
      bool AllKnown = true;
      bool AnyRet = false;
      for (uint32_t B = 0; B < F.Blocks.size(); ++B) {
        if (!G.isReachable(B))
          continue;
        if (F.Blocks[B].terminator().Op != Opcode::Ret)
          continue;
        AnyRet = true;
        if (!Exec[B]) {
          AllKnown = false;
          break;
        }
        Returns += *Exec[B];
      }
      if (AnyRet && AllKnown && Returns != Opts.EntryExecutions) {
        bool Tail = Returns < Opts.EntryExecutions;
        if (Tail && !Opts.Strict) {
          Out.push_back(makeDiag(
              Severity::Note, PassId, "truncated-tail", funcLoc(M, FI),
              "entry function returns " + std::to_string(Returns) +
                  " of " + std::to_string(Opts.EntryExecutions) +
                  " times; consistent with a trace cut off mid-run"));
        } else {
          Out.push_back(makeDiag(
              Severity::Error, PassId, "exit-flow-mismatch", funcLoc(M, FI),
              "entry function entered " +
                  std::to_string(Opts.EntryExecutions) +
                  " times but returns " + std::to_string(Returns) +
                  " times"));
        }
      }
    }
  }
};

class ProfileVerifyPass : public Pass {
public:
  ProfileVerifyPass(BranchProfileCounts P, ProfileVerifyOptions Opts)
      : P(std::move(P)), Opts(Opts) {}

  const char *id() const override { return PassId; }
  const char *description() const override {
    return "Kirchhoff flow conservation of a per-branch profile against "
           "the CFG: block in-flow equals out-flow, branch counts agree "
           "with successor entry counts, and the entry function begins and "
           "ends the expected number of times";
  }

  void run(const Module &M, std::vector<Diagnostic> &Out) const override {
    std::vector<Diagnostic> Diags = verifyProfileRealizability(M, P, Opts);
    Out.insert(Out.end(), std::make_move_iterator(Diags.begin()),
               std::make_move_iterator(Diags.end()));
  }

private:
  BranchProfileCounts P;
  ProfileVerifyOptions Opts;
};

} // namespace

BranchProfileCounts
bpcr::sa::BranchProfileCounts::fromColumnar(size_t NumBranches,
                                            const ColumnarTrace &CT) {
  BranchProfileCounts P;
  P.Counts.assign(NumBranches, BranchCounts{});
  const int32_t *Ids = CT.ids().data();
  const uint64_t *Dirs = CT.directions().data();
  size_t N = CT.size();
  for (size_t I = 0; I < N; ++I) {
    int32_t Id = Ids[I];
    if (Id < 0 || static_cast<size_t>(Id) >= NumBranches) {
      ++P.OutOfRange;
      continue;
    }
    BranchCounts &C = P.Counts[static_cast<size_t>(Id)];
    if ((Dirs[I >> 6] >> (I & 63)) & 1)
      ++C.Taken;
    else
      ++C.NotTaken;
  }
  return P;
}

std::vector<Diagnostic>
bpcr::sa::verifyProfileRealizability(const Module &M,
                                     const BranchProfileCounts &P,
                                     const ProfileVerifyOptions &Opts) {
  std::vector<Diagnostic> Out;
  size_t NumBranches = M.conditionalBranchCount();
  if (P.Counts.size() != NumBranches) {
    Location Loc;
    Out.push_back(makeDiag(
        Severity::Error, PassId, "count-shape", Loc,
        "profile carries " + std::to_string(P.Counts.size()) +
            " branch slots but the module has " +
            std::to_string(NumBranches) + " conditional branches"));
    return Out;
  }
  if (P.OutOfRange > 0) {
    Location Loc;
    Out.push_back(makeDiag(
        Severity::Error, PassId, "unknown-branch", Loc,
        std::to_string(P.OutOfRange) +
            " profile events reference branch ids outside the module"));
  }

  for (uint32_t FI = 0; FI < M.Functions.size(); ++FI) {
    if (!isCfgBuildable(M.Functions[FI]))
      continue;
    FunctionFlow Flow(M, FI, P, Opts, Out);
    Flow.solve();
  }
  return Out;
}

std::unique_ptr<Pass>
bpcr::sa::createProfileVerifyPass(BranchProfileCounts P,
                                  ProfileVerifyOptions Opts) {
  return std::make_unique<ProfileVerifyPass>(std::move(P), Opts);
}
