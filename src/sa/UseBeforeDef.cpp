//===- sa/UseBeforeDef.cpp - Reaching-definitions register lint -----------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Forward may-analysis over each function: a register is maybe-undefined at
// a program point when some path from the entry reaches it without writing
// the register. Function parameters arrive defined; everything else starts
// undefined. A read of a maybe-undefined register is reported once per
// (instruction, register). The interpreter zero-fills registers, so the
// finding is a warning — the program is deterministic but almost certainly
// not computing what its author intended.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "sa/Passes.h"

#include <algorithm>

using namespace bpcr;
using namespace bpcr::sa;

namespace {

constexpr const char *PassId = "use-before-def";

/// Per-block maybe-undefined register sets as byte vectors (registers are
/// uint16_t indexes; functions here have tens of registers, not thousands).
using RegSet = std::vector<uint8_t>;

/// Applies one instruction's reads to \p Report and its write to \p Undef.
template <typename ReadFn>
void transfer(const Instruction &I, RegSet &Undef, ReadFn Report) {
  auto Read = [&](const Operand &O) {
    if (O.isReg() && O.Val >= 0 &&
        static_cast<size_t>(O.Val) < Undef.size() && Undef[O.asReg()])
      Report(O.asReg());
  };
  Read(I.A);
  Read(I.B);
  Read(I.C);
  for (const Operand &Arg : I.Args)
    Read(Arg);
  if (writesRegister(I.Op) && I.Dst < Undef.size())
    Undef[I.Dst] = 0;
}

class UseBeforeDefPass : public FunctionPass {
public:
  const char *id() const override { return PassId; }
  const char *description() const override {
    return "registers read on some path from the entry before any write "
           "(the interpreter zero-fills, so execution is defined but the "
           "value is almost certainly unintended)";
  }

  void runOnFunction(const Module &M, uint32_t FI,
                     std::vector<Diagnostic> &Out) const override {
    const Function &F = M.Functions[FI];
    if (!isCfgBuildable(F))
      return; // ir-verify reports the structural problem
    CFG G(F);

    const size_t NumRegs = F.NumRegs;
    RegSet EntryUndef(NumRegs, 1);
    for (uint32_t P = 0; P < F.NumParams && P < NumRegs; ++P)
      EntryUndef[P] = 0;

    // In-sets start empty (optimistic) and grow monotonically to the
    // union-over-paths fixpoint; only reachable blocks participate.
    std::vector<RegSet> In(F.Blocks.size(), RegSet(NumRegs, 0));
    In[0] = EntryUndef;

    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (uint32_t B : G.reversePostOrder()) {
        RegSet OutSet = In[B];
        for (const Instruction &I : F.Blocks[B].Insts)
          transfer(I, OutSet, [](Reg) {});
        for (uint32_t S : G.successors(B))
          for (size_t R = 0; R < NumRegs; ++R)
            if (OutSet[R] && !In[S][R]) {
              In[S][R] = 1;
              Changed = true;
            }
      }
    }

    // Reporting pass over the converged sets.
    for (uint32_t B : G.reversePostOrder()) {
      RegSet Undef = In[B];
      for (size_t II = 0; II < F.Blocks[B].Insts.size(); ++II) {
        RegSet ReportedHere(NumRegs, 0);
        transfer(F.Blocks[B].Insts[II], Undef, [&](Reg R) {
          if (ReportedHere[R])
            return;
          ReportedHere[R] = 1;
          Location Loc;
          Loc.FuncIdx = static_cast<int32_t>(FI);
          Loc.FuncName = F.Name;
          Loc.BlockIdx = static_cast<int32_t>(B);
          Loc.BlockName = F.Blocks[B].Name;
          Loc.InstIdx = static_cast<int32_t>(II);
          Out.push_back(makeDiag(
              Severity::Warning, PassId, "read-before-def", Loc,
              "register r" + std::to_string(R) +
                  " may be read before any write reaches it; the "
                  "interpreter substitutes 0"));
        });
      }
    }
  }
};

} // namespace

std::unique_ptr<Pass> sa::createUseBeforeDefPass() {
  return std::make_unique<UseBeforeDefPass>();
}
