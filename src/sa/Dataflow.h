//===- sa/Dataflow.h - Monotone dataflow framework --------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A monotone-framework worklist solver over the bpcr IR, plus the two
/// concrete lattices the analysis passes are built from:
///
///   DataflowSolver<Client>  generic forward/backward fixpoint engine.
///                           Seeded in reverse post order, join-over-paths,
///                           with guaranteed termination: after a per-block
///                           visit threshold the client is asked to widen,
///                           and past a hard visit bound the state is forced
///                           to the lattice top.
///
///   Interval / IntervalState / IntervalAnalysis
///                           value-range propagation over registers with
///                           transfer functions that mirror the interpreter
///                           exactly (wrapping 64-bit arithmetic, masked
///                           shifts, guarded Div/Rem, zero-filled
///                           registers). The `const-prop` pass and
///                           computeBranchProofs() sit on top.
///
///   LivenessClient          backward block-level register liveness; the
///                           cross-check fixture tests run against the
///                           hand-rolled fixpoint in the dead-code pass.
///
/// A branch whose condition interval excludes zero (or is exactly [0,0]) is
/// unidirectional on every execution; BranchProofs carries those facts to
/// the pipeline, which folds the static prediction and skips pattern-table
/// fill and machine search for the proven branches.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_SA_DATAFLOW_H
#define BPCR_SA_DATAFLOW_H

#include "analysis/CFG.h"
#include "ir/Module.h"

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace bpcr {
namespace sa {

// -- Generic solver ----------------------------------------------------------

enum class DataflowDirection : uint8_t { Forward, Backward };

/// Telemetry from one solve() run; Converged is false only when the hard
/// visit bound tripped (a lattice/client bug — the framework still
/// terminates and the result is sound-by-top).
struct SolveStats {
  uint64_t BlockVisits = 0;
  uint64_t Widenings = 0;
  uint64_t ForcedTop = 0;
  bool Converged = true;
};

/// Generic worklist solver. The Client supplies the lattice:
///
///   using State = ...;               // copyable value state
///   DataflowDirection direction() const;
///   State boundaryState() const;     // at function entry (forward) or at
///                                    // every exit block (backward)
///   State initialState() const;      // optimistic bottom for inner blocks
///   bool join(State &Dst, const State &Src, bool Widen) const;
///                                    // returns true when Dst changed;
///                                    // Widen asks for an accelerated join
///   State transfer(uint32_t Block, const State &In) const;
///   unsigned widenAfter() const;     // changed-joins before Widen = true
///   unsigned maxVisitsPerBlock() const; // hard bound, then forceTop
///   void forceTop(State &S) const;
///
/// Unreachable blocks are never visited (the CFG's RPO omits them) and
/// their edges are ignored when joining.
template <typename Client> class DataflowSolver {
public:
  using State = typename Client::State;

  DataflowSolver(const CFG &G, const Client &C) : G(G), C(C) {}

  /// Runs to fixpoint. Idempotent; returns the stats of the run.
  const SolveStats &solve() {
    uint32_t N = G.numBlocks();
    Before.assign(N, C.initialState());
    After.assign(N, C.initialState());
    Visits.assign(N, 0);
    Stats = SolveStats();

    const bool Fwd = C.direction() == DataflowDirection::Forward;
    const std::vector<uint32_t> &RPO = G.reversePostOrder();
    std::vector<uint32_t> Order(RPO);
    if (!Fwd) {
      Order.assign(RPO.rbegin(), RPO.rend());
    }

    std::vector<uint8_t> Pending(N, 0);
    std::vector<uint32_t> Worklist;
    Worklist.reserve(Order.size());
    for (uint32_t B : Order) {
      Worklist.push_back(B);
      Pending[B] = 1;
    }

    // Hard global bound: every pop either converges or is charged against a
    // block's visit budget, so this never triggers for a monotone client.
    uint64_t MaxTotal =
        static_cast<uint64_t>(N) * (C.maxVisitsPerBlock() + 4u) + 16u;

    size_t Head = 0;
    while (Head < Worklist.size()) {
      if (Stats.BlockVisits >= MaxTotal) {
        Stats.Converged = false;
        break;
      }
      uint32_t B = Worklist[Head++];
      Pending[B] = 0;
      ++Stats.BlockVisits;
      if (Head > Worklist.size() / 2 && Head > 64) {
        Worklist.erase(Worklist.begin(),
                       Worklist.begin() + static_cast<std::ptrdiff_t>(Head));
        Head = 0;
      }

      // Recompute the input side of B from its neighbours.
      State In = inputFor(B, Fwd);
      State &Slot = Fwd ? Before[B] : After[B];
      Slot = std::move(In);

      if (Visits[B] >= C.maxVisitsPerBlock()) {
        C.forceTop(Slot);
        ++Stats.ForcedTop;
      }
      ++Visits[B];

      State Out = C.transfer(B, Slot);
      State &OutSlot = Fwd ? After[B] : Before[B];
      bool Changed = Visits[B] == 1;
      bool Widen = Visits[B] > C.widenAfter();
      if (C.join(OutSlot, Out, Widen))
        Changed = true;
      if (Widen && Changed)
        ++Stats.Widenings;
      if (!Changed)
        continue;

      const std::vector<uint32_t> &Next =
          Fwd ? G.successors(B) : G.predecessors(B);
      for (uint32_t S : Next) {
        if (!G.isReachable(S) || Pending[S])
          continue;
        Pending[S] = 1;
        Worklist.push_back(S);
      }
    }
    return Stats;
  }

  /// State at the top of \p Block in program order.
  const State &before(uint32_t Block) const { return Before[Block]; }
  /// State at the bottom of \p Block in program order.
  const State &after(uint32_t Block) const { return After[Block]; }
  const SolveStats &stats() const { return Stats; }

private:
  State inputFor(uint32_t B, bool Fwd) {
    State In = C.initialState();
    bool Boundary =
        Fwd ? B == 0 : G.successors(B).empty();
    if (Boundary)
      C.join(In, C.boundaryState(), false);
    const std::vector<uint32_t> &Edges =
        Fwd ? G.predecessors(B) : G.successors(B);
    for (uint32_t P : Edges) {
      if (!G.isReachable(P))
        continue;
      C.join(In, Fwd ? After[P] : Before[P], false);
    }
    return In;
  }

  const CFG &G;
  const Client &C;
  std::vector<State> Before, After;
  std::vector<uint32_t> Visits;
  SolveStats Stats;
};

// -- Interval lattice --------------------------------------------------------

/// A signed 64-bit value range [Lo, Hi], inclusive. INT64_MIN / INT64_MAX
/// bounds are treated as "unbounded" in that direction; Lo > Hi is the
/// empty (bottom) interval. Transfer arithmetic returns top whenever the
/// interpreter's wrap-around semantics could cross a bound.
struct Interval {
  int64_t Lo = std::numeric_limits<int64_t>::min();
  int64_t Hi = std::numeric_limits<int64_t>::max();

  static Interval top() { return Interval(); }
  static Interval bottom() { return Interval{1, 0}; }
  static Interval constant(int64_t V) { return Interval{V, V}; }
  static Interval range(int64_t Lo, int64_t Hi) { return Interval{Lo, Hi}; }

  bool isBottom() const { return Lo > Hi; }
  bool isTop() const {
    return Lo == std::numeric_limits<int64_t>::min() &&
           Hi == std::numeric_limits<int64_t>::max();
  }
  bool isConstant() const { return Lo == Hi; }
  bool contains(int64_t V) const { return !isBottom() && Lo <= V && V <= Hi; }
  bool nonNegative() const { return !isBottom() && Lo >= 0; }

  bool operator==(const Interval &O) const { return Lo == O.Lo && Hi == O.Hi; }
  bool operator!=(const Interval &O) const { return !(*this == O); }
};

/// Smallest interval containing both (the lattice join).
Interval hull(Interval A, Interval B);

/// Transfer function for one ALU/compare op over intervals, mirroring the
/// interpreter's semantics exactly (including Div/Rem guards and shift
/// masking). Compares yield a sub-interval of [0, 1]; a singleton result
/// on a Br condition is a direction proof.
Interval evalBinop(Opcode Op, Interval A, Interval B);

/// Per-program-point register environment. Defined = false is the bottom
/// environment (no path reaches this point yet).
struct IntervalState {
  bool Defined = false;
  std::vector<Interval> Regs;
};

/// Forward interval propagation over one function. The interpreter
/// zero-fills every register and then copies arguments, so at function
/// entry parameters are top and every other register is the constant 0.
class IntervalAnalysis {
public:
  explicit IntervalAnalysis(const Function &F);

  /// Environment at the top of \p Block (bottom for unreachable blocks).
  const IntervalState &blockEntry(uint32_t Block) const {
    return Entry[Block];
  }

  /// Interval of \p Op just before instruction \p InstIdx of \p Block.
  Interval operandBefore(uint32_t Block, uint32_t InstIdx,
                         const Operand &Op) const;

  /// Interval of register \p R just before instruction \p InstIdx.
  Interval valueBefore(uint32_t Block, uint32_t InstIdx, Reg R) const;

  const SolveStats &stats() const { return Stats; }

private:
  const Function &F;
  std::vector<IntervalState> Entry;
  SolveStats Stats;
};

// -- Backward liveness (solver cross-check lattice) --------------------------

/// Block-level register liveness as a DataflowSolver client. The dead-code
/// pass keeps its original hand-rolled fixpoint; tests solve this client
/// and assert both engines agree (and that every dead-store finding has a
/// dead register after the defining instruction).
class LivenessClient {
public:
  /// One bit per register; Live[R] != 0 means R may be read later.
  using State = std::vector<uint8_t>;

  explicit LivenessClient(const Function &F) : F(F) {}

  DataflowDirection direction() const { return DataflowDirection::Backward; }
  State boundaryState() const;
  State initialState() const;
  bool join(State &Dst, const State &Src, bool Widen) const;
  State transfer(uint32_t Block, const State &In) const;
  unsigned widenAfter() const { return 1u << 16; } // finite lattice: never
  unsigned maxVisitsPerBlock() const {
    return static_cast<unsigned>(F.NumRegs) + 4u;
  }
  void forceTop(State &S) const;

private:
  const Function &F;
};

/// Calls \p Fn with every register the instruction reads. Shared by the
/// liveness lattice and (indirectly) the dead-code pass contract.
template <typename Fn>
void forEachReadRegister(const Instruction &I, Fn &&F) {
  auto Rd = [&F](const Operand &O) {
    if (O.isReg())
      F(O.asReg());
  };
  Rd(I.A);
  Rd(I.B);
  Rd(I.C);
  for (const Operand &O : I.Args)
    Rd(O);
}

// -- Branch direction proofs -------------------------------------------------

/// The per-branch facts const-prop proves, indexed by BranchId. Unknown
/// means no proof; Taken / NotTaken mean every execution of the branch goes
/// that way, so the pipeline may fold the prediction and skip the pattern
/// table and machine search for it.
struct BranchProofs {
  std::vector<Prediction> Dir;

  Prediction dirOf(int32_t BranchId) const {
    if (BranchId < 0 || static_cast<size_t>(BranchId) >= Dir.size())
      return Prediction::Unknown;
    return Dir[static_cast<size_t>(BranchId)];
  }
  bool proven(int32_t BranchId) const {
    return dirOf(BranchId) != Prediction::Unknown;
  }
  uint64_t provenCount() const {
    uint64_t N = 0;
    for (Prediction P : Dir)
      N += P != Prediction::Unknown ? 1 : 0;
    return N;
  }
};

/// Runs interval analysis over every CFG-buildable function of \p M and
/// returns direction proofs for its conditional branches. Requires branch
/// ids to be assigned (module shapes without ids return an empty proof
/// set).
BranchProofs computeBranchProofs(const Module &M);

} // namespace sa
} // namespace bpcr

#endif // BPCR_SA_DATAFLOW_H
