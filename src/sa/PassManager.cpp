//===- sa/PassManager.cpp -------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sa/Passes.h"

#include "ir/Verifier.h"
#include "obs/Metrics.h"
#include "obs/TraceSpans.h"
#include "support/ThreadPool.h"

#include <iterator>

using namespace bpcr;
using namespace bpcr::sa;

bool sa::isCfgBuildable(const Function &F) {
  if (F.Blocks.empty())
    return false;
  for (const BasicBlock &BB : F.Blocks) {
    if (!BB.isComplete())
      return false;
    const Instruction &T = BB.terminator();
    if (T.Op == Opcode::Br &&
        (T.TrueTarget >= F.Blocks.size() || T.FalseTarget >= F.Blocks.size()))
      return false;
    if (T.Op == Opcode::Jmp && T.TrueTarget >= F.Blocks.size())
      return false;
  }
  return true;
}

namespace {

/// Pass adapter over ir/Verifier so structural findings share the lint
/// schema and every lint run starts from well-formedness.
class VerifyPass : public Pass {
public:
  const char *id() const override { return "ir-verify"; }
  const char *description() const override {
    return "structural validity: complete blocks, in-range targets and "
           "registers, consistent call signatures, valid entry points";
  }
  void run(const Module &M, std::vector<Diagnostic> &Out) const override {
    std::vector<Diagnostic> Diags = verifyModuleDiags(M);
    Out.insert(Out.end(), std::make_move_iterator(Diags.begin()),
               std::make_move_iterator(Diags.end()));
  }
};

/// Replaces '-' with '_' so pass ids form one metric path segment each
/// ("sa.pass.use_before_def").
std::string metricSegment(const char *Id) {
  std::string Out(Id);
  for (char &C : Out)
    if (C == '-')
      C = '_';
  return Out;
}

} // namespace

std::unique_ptr<Pass> sa::createVerifyPass() {
  return std::make_unique<VerifyPass>();
}

void sa::addStandardPasses(PassManager &PM) {
  PM.add(createVerifyPass());
  PM.add(createUseBeforeDefPass());
  PM.add(createDeadCodePass());
  PM.add(createLoopShapePass());
  PM.add(createBranchHygienePass());
  PM.add(createConstPropPass());
  PM.add(createPredictabilityPass());
}

std::vector<Diagnostic> PassManager::run(const Module &M,
                                         unsigned Jobs) const {
  std::vector<Diagnostic> All;
  Registry &Reg = Registry::global();
  const bool ObsOn = Reg.enabled();
  unsigned Workers = ThreadPool::resolveJobs(Jobs);
  for (const std::unique_ptr<Pass> &P : Passes) {
    Span S(P->id(), "sa.pass");
    size_t Before = All.size();
    const FunctionPass *FP = P->asFunctionPass();
    if (FP && Workers > 1 && M.Functions.size() > 1) {
      // Per-function slots concatenated in function order: byte-identical
      // to the serial FunctionPass::run loop regardless of worker count.
      std::vector<std::vector<Diagnostic>> Slots(M.Functions.size());
      parallelForJobs(Workers, M.Functions.size(), [&](size_t F) {
        FP->runOnFunction(M, static_cast<uint32_t>(F), Slots[F]);
      });
      for (std::vector<Diagnostic> &Slot : Slots)
        All.insert(All.end(), std::make_move_iterator(Slot.begin()),
                   std::make_move_iterator(Slot.end()));
    } else {
      P->run(M, All);
    }
    S.arg("diags", static_cast<uint64_t>(All.size() - Before));
    if (ObsOn)
      Reg.gauge("sa.pass." + metricSegment(P->id()))
          .set(static_cast<double>(All.size() - Before));
  }
  if (ObsOn) {
    Reg.gauge("sa.diags.errors")
        .set(static_cast<double>(countSeverity(All, Severity::Error)));
    Reg.gauge("sa.diags.warnings")
        .set(static_cast<double>(countSeverity(All, Severity::Warning)));
    Reg.gauge("sa.diags.notes")
        .set(static_cast<double>(countSeverity(All, Severity::Note)));
  }
  return All;
}
