//===- obs/Attribution.h - Per-branch misprediction ledger ------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The misprediction attribution ledger: per original branch, how often it
/// ran, how it was predicted, which strategy the pipeline chose (and what
/// the runner-up would have scored), and — for replicated branches — how
/// each replica copy performed on the transformed program. The pipeline
/// fills one of these behind the Registry::global().enabled() guard, so the
/// disabled path stays one branch per run; `bpcr explain`, the report's
/// "branches" section and the annotated IR dump all read it.
///
/// Header-only plain data (like DecisionLog.h) so core can own the ledger
/// without a link dependency on bpcr_obs; the JSON serialization lives in
/// Attribution.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_OBS_ATTRIBUTION_H
#define BPCR_OBS_ATTRIBUTION_H

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace bpcr {

class JsonValue;

/// Training-trace score of one candidate strategy considered for a branch
/// during selection. Every candidate the selector built is recorded, not
/// just the winner, so `bpcr explain --branch` can reconstruct the choice.
struct CandidateScore {
  /// strategyKindName() of the candidate.
  std::string Strategy;
  /// Correct training-trace predictions the candidate would have made.
  uint64_t Correct = 0;
  uint64_t Total = 0;
  /// States the candidate's machine uses (1 for profile).
  unsigned States = 1;
  bool Chosen = false;

  double hitRatePercent() const {
    return Total ? 100.0 * static_cast<double>(Correct) /
                       static_cast<double>(Total)
                 : 0.0;
  }
};

/// Measured outcome of one branch copy in the transformed program.
struct ReplicaStat {
  /// BranchId of the copy in the transformed module.
  int32_t ReplicaId = -1;
  uint64_t Executions = 0;
  uint64_t Mispredictions = 0;
};

/// Everything the ledger knows about one original branch.
struct BranchAttribution {
  int32_t BranchId = -1;
  /// strategyKindName() of the chosen strategy.
  std::string Strategy;
  /// decisionActionName() of what the pipeline did with it.
  std::string Action;
  /// Training-trace executions and taken count (the profile view).
  uint64_t Executions = 0;
  uint64_t TakenCount = 0;
  /// Training score of the chosen strategy.
  uint64_t TrainCorrect = 0;
  uint64_t TrainTotal = 0;
  /// Best losing candidate and how many correct predictions the winner has
  /// over it (0 when there was no competition).
  std::string RunnerUp;
  uint64_t RunnerUpDelta = 0;
  /// Measured on the transformed program, summed over all replica copies.
  uint64_t MeasuredExecutions = 0;
  uint64_t Mispredictions = 0;
  /// Every candidate the selector scored, in selection order.
  std::vector<CandidateScore> Candidates;
  /// Per-copy measurements; one entry per replica, sorted by ReplicaId.
  std::vector<ReplicaStat> Replicas;

  double missRatePercent() const {
    return MeasuredExecutions
               ? 100.0 * static_cast<double>(Mispredictions) /
                     static_cast<double>(MeasuredExecutions)
               : 0.0;
  }

  double takenBiasPercent() const {
    return Executions ? 100.0 * static_cast<double>(TakenCount) /
                            static_cast<double>(Executions)
                      : 0.0;
  }
};

/// Per-branch attribution for one pipeline run, indexed by original branch
/// id. Empty when the run was made with observability disabled.
class AttributionLedger {
public:
  void resize(uint32_t NumBranches) {
    Branches.resize(NumBranches);
    for (uint32_t Id = 0; Id < NumBranches; ++Id)
      Branches[Id].BranchId = static_cast<int32_t>(Id);
  }

  bool empty() const { return Branches.empty(); }
  size_t size() const { return Branches.size(); }

  BranchAttribution &branch(int32_t Id) {
    return Branches[static_cast<uint32_t>(Id)];
  }
  const BranchAttribution &branch(int32_t Id) const {
    return Branches[static_cast<uint32_t>(Id)];
  }
  /// \returns nullptr when \p Id is out of range.
  const BranchAttribution *maybeBranch(int32_t Id) const {
    return Id >= 0 && static_cast<size_t>(Id) < Branches.size()
               ? &Branches[static_cast<uint32_t>(Id)]
               : nullptr;
  }

  const std::vector<BranchAttribution> &all() const { return Branches; }

  uint64_t totalMeasuredExecutions() const {
    uint64_t N = 0;
    for (const BranchAttribution &B : Branches)
      N += B.MeasuredExecutions;
    return N;
  }

  uint64_t totalMispredictions() const {
    uint64_t N = 0;
    for (const BranchAttribution &B : Branches)
      N += B.Mispredictions;
    return N;
  }

  /// The Pareto view: executed branches ordered by misprediction count
  /// (ties broken by branch id), at most \p K entries.
  std::vector<const BranchAttribution *> topByMispredictions(size_t K) const {
    std::vector<const BranchAttribution *> Out;
    for (const BranchAttribution &B : Branches)
      if (B.MeasuredExecutions > 0)
        Out.push_back(&B);
    std::sort(Out.begin(), Out.end(),
              [](const BranchAttribution *A, const BranchAttribution *B) {
                if (A->Mispredictions != B->Mispredictions)
                  return A->Mispredictions > B->Mispredictions;
                return A->BranchId < B->BranchId;
              });
    if (Out.size() > K)
      Out.resize(K);
    return Out;
  }

private:
  std::vector<BranchAttribution> Branches;
};

/// The report's "branches" section: totals, the top-\p TopK Pareto entries
/// (with per-replica detail) and a flattenable "by_id" object the compare
/// gate can hold per-branch miss rates against. Implemented in
/// Attribution.cpp (links bpcr_obs).
JsonValue attributionJson(const AttributionLedger &L, unsigned TopK);

} // namespace bpcr

#endif // BPCR_OBS_ATTRIBUTION_H
