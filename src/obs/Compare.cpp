//===- obs/Compare.cpp ----------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Compare.h"

#include "obs/Report.h"
#include "support/TablePrinter.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

using namespace bpcr;

bool bpcr::globMatch(const std::string &Pattern, const std::string &Name) {
  // Iterative '*' glob with backtracking (no '?', no classes).
  size_t P = 0, N = 0, Star = std::string::npos, Mark = 0;
  while (N < Name.size()) {
    if (P < Pattern.size() &&
        (Pattern[P] == Name[N])) {
      ++P;
      ++N;
    } else if (P < Pattern.size() && Pattern[P] == '*') {
      Star = P++;
      Mark = N;
    } else if (Star != std::string::npos) {
      P = Star + 1;
      N = ++Mark;
    } else {
      return false;
    }
  }
  while (P < Pattern.size() && Pattern[P] == '*')
    ++P;
  return P == Pattern.size();
}

std::vector<CompareRule> bpcr::defaultCompareRules() {
  // Wall-clock metrics vary run to run and machine to machine: report them,
  // never gate on them unless a threshold file opts in. Everything else in
  // the reports is deterministic for a fixed (workload, seed, events)
  // configuration, so the default gate is exact equality.
  std::vector<CompareRule> Rules;
  Rules.push_back({"phases.*", 0.0, DeltaDirection::Both, /*Skip=*/true});
  Rules.push_back({"*_ns*", 0.0, DeltaDirection::Both, /*Skip=*/true});
  Rules.push_back({"*per_sec*", 0.0, DeltaDirection::Both, /*Skip=*/true});
  // Span sampling drops depend on tracing configuration, not the workload.
  Rules.push_back(
      {"counters.obs.trace.*", 0.0, DeltaDirection::Both, /*Skip=*/true});
  // Pool telemetry (queue depth, utilization) varies with scheduling.
  Rules.push_back({"gauges.pool.*", 0.0, DeltaDirection::Both, /*Skip=*/true});
  // In the profile section only the span-open counts are schedule- and
  // machine-independent; recorded counts, times, RSS and allocator bytes
  // all vary with thread count, clock or stdlib version.
  Rules.push_back({"profile.categories.*.opened", 0.0, DeltaDirection::Both,
                   /*Skip=*/false});
  Rules.push_back({"profile.*", 0.0, DeltaDirection::Both, /*Skip=*/true});
  Rules.push_back({"*", 0.0, DeltaDirection::Both, /*Skip=*/false});
  return Rules;
}

namespace {

void flattenInto(const JsonValue &V, const std::string &Prefix,
                 std::vector<std::pair<std::string, double>> &Out) {
  if (V.isNumber()) {
    Out.emplace_back(Prefix, V.asDouble());
    return;
  }
  if (V.kind() != JsonValue::Kind::Object)
    return; // arrays (per-branch decisions) and strings are not metrics
  for (const auto &[Key, Child] : V.members())
    flattenInto(Child, Prefix.empty() ? Key : Prefix + "." + Key, Out);
}

const char *directionName(DeltaDirection D) {
  switch (D) {
  case DeltaDirection::Up:
    return "up";
  case DeltaDirection::Down:
    return "down";
  case DeltaDirection::Both:
    return "both";
  }
  return "<bad>";
}

/// Context fields whose mismatch makes a comparison suspect but not
/// invalid.
void noteContextDiffs(const JsonValue &OldDoc, const JsonValue &NewDoc,
                      CompareResult &R) {
  for (const char *Key : {"tool", "command", "workload"}) {
    const JsonValue *O = OldDoc.find(Key), *N = NewDoc.find(Key);
    std::string OS = O ? O->asString() : "<absent>";
    std::string NS = N ? N->asString() : "<absent>";
    if (OS != NS)
      R.Warnings.push_back(std::string(Key) + " differs: '" + OS +
                           "' vs '" + NS + "'");
  }
  for (const char *Key : {"seed", "events"}) {
    const JsonValue *O = OldDoc.find(Key), *N = NewDoc.find(Key);
    int64_t OI = O ? O->asInt() : 0;
    int64_t NI = N ? N->asInt() : 0;
    if (OI != NI)
      R.Warnings.push_back(std::string(Key) + " differs: " +
                           std::to_string(OI) + " vs " +
                           std::to_string(NI));
  }
}

std::string formatValue(double V) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

std::string formatDelta(const MetricDelta &D) {
  if (D.MissingOld)
    return "added";
  if (D.MissingNew)
    return "removed";
  if (std::isinf(D.RelDelta))
    return "inf";
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%+.2f%%", D.RelDelta * 100.0);
  return Buf;
}

} // namespace

std::vector<std::pair<std::string, double>>
bpcr::flattenReportMetrics(const JsonValue &Report) {
  std::vector<std::pair<std::string, double>> Out;
  if (const JsonValue *M = Report.find("metrics"))
    flattenInto(*M, "", Out);
  if (const JsonValue *P = Report.find("pipeline")) {
    std::vector<std::pair<std::string, double>> Pipe;
    flattenInto(*P, "pipeline", Pipe);
    Out.insert(Out.end(), Pipe.begin(), Pipe.end());
  }
  if (const JsonValue *B = Report.find("branches")) {
    // The "top" array (ordering churns with ties) is skipped like all
    // arrays; "by_id" leaves are stable per-branch metrics.
    std::vector<std::pair<std::string, double>> Br;
    flattenInto(*B, "branches", Br);
    Out.insert(Out.end(), Br.begin(), Br.end());
  }
  if (const JsonValue *T = Report.find("timeline")) {
    // The full "windows" array is plot data and skipped like all arrays;
    // the scalar summary and the per-phase objects are stable and gated.
    std::vector<std::pair<std::string, double>> Tl;
    flattenInto(*T, "timeline", Tl);
    Out.insert(Out.end(), Tl.begin(), Tl.end());
  }
  if (const JsonValue *P = Report.find("profile")) {
    // The rss_samples array is plot data and skipped like all arrays; the
    // category/site/allocator scalars flatten, and the default rules gate
    // only the schedule-independent opened counts.
    std::vector<std::pair<std::string, double>> Pr;
    flattenInto(*P, "profile", Pr);
    Out.insert(Out.end(), Pr.begin(), Pr.end());
  }
  return Out;
}

CompareResult bpcr::compareReports(const JsonValue &OldDoc,
                                   const JsonValue &NewDoc,
                                   const CompareOptions &Opts) {
  CompareResult R;

  const JsonValue *Docs[2] = {&OldDoc, &NewDoc};
  const char *Labels[2] = {"old", "new"};
  int64_t Schemas[2] = {0, 0};
  for (int K = 0; K < 2; ++K) {
    const char *Label = Labels[K];
    const JsonValue *V = Docs[K]->find("schema_version");
    if (!V || !V->isNumber())
      R.Errors.push_back(std::string(Label) +
                         " report has no schema_version (not a bpcr run "
                         "report?)");
    else if (V->asInt() < 1 || V->asInt() > ReportSchemaVersion)
      R.Errors.push_back(std::string(Label) + " report has schema_version " +
                         std::to_string(V->asInt()) + ", this tool speaks " +
                         std::to_string(ReportSchemaVersion));
    else
      Schemas[K] = V->asInt();
  }
  if (!R.Errors.empty())
    return R;
  // Differing (but supported) schemas diff fine — sections absent from one
  // side surface as added/removed metrics — but deserve a loud note so a
  // schema skew is never mistaken for a genuine metric change.
  if (Schemas[0] != Schemas[1])
    R.Warnings.push_back(
        "schema versions differ: old=" + std::to_string(Schemas[0]) +
        " new=" + std::to_string(Schemas[1]) +
        "; metrics absent from one schema appear as added/removed");

  noteContextDiffs(OldDoc, NewDoc, R);

  std::map<std::string, std::pair<const double *, const double *>> Union;
  auto OldFlat = flattenReportMetrics(OldDoc);
  auto NewFlat = flattenReportMetrics(NewDoc);
  for (const auto &[Name, Val] : OldFlat)
    Union[Name].first = &Val;
  for (const auto &[Name, Val] : NewFlat)
    Union[Name].second = &Val;

  std::vector<CompareRule> Rules = Opts.Rules;
  for (CompareRule &Def : defaultCompareRules())
    Rules.push_back(std::move(Def));
  // User-supplied rules (the first Opts.Rules.size() entries) that match
  // nothing are usually typos in the threshold file — warn rather than let
  // the intended gate silently not exist.
  std::vector<bool> RuleMatched(Rules.size(), false);

  for (const auto &[Name, Vals] : Union) {
    MetricDelta D;
    D.Name = Name;
    D.MissingOld = Vals.first == nullptr;
    D.MissingNew = Vals.second == nullptr;
    D.Old = Vals.first ? *Vals.first : 0.0;
    D.New = Vals.second ? *Vals.second : 0.0;

    // The built-in "*" rule guarantees a match.
    const CompareRule *Rule = &Rules.back();
    for (size_t I = 0; I < Rules.size(); ++I)
      if (globMatch(Rules[I].Pattern, Name)) {
        Rule = &Rules[I];
        RuleMatched[I] = true;
        break;
      }
    D.RulePattern = Rule->Pattern;
    D.Threshold = Rule->MaxRelDelta;
    D.Direction = Rule->Direction;
    D.Skipped = Rule->Skip;

    if (D.MissingOld || D.MissingNew) {
      // A gated metric vanishing is a regression (the gate would otherwise
      // be dodged by deleting the metric); a new metric has no baseline
      // yet and passes until the baseline is refreshed.
      D.RelDelta = 0.0;
      D.Regressed = !D.Skipped && D.MissingNew;
    } else {
      double Delta = D.New - D.Old;
      if (D.Old != 0.0)
        D.RelDelta = Delta / std::fabs(D.Old);
      else
        D.RelDelta = Delta == 0.0 ? 0.0
                     : Delta > 0.0 ? HUGE_VAL
                                   : -HUGE_VAL;
      if (!D.Skipped) {
        constexpr double Eps = 1e-12;
        switch (D.Direction) {
        case DeltaDirection::Up:
          D.Regressed = D.RelDelta > D.Threshold + Eps;
          break;
        case DeltaDirection::Down:
          D.Regressed = D.RelDelta < -(D.Threshold + Eps);
          break;
        case DeltaDirection::Both:
          D.Regressed = std::fabs(D.RelDelta) > D.Threshold + Eps;
          break;
        }
      }
    }
    if (D.Regressed)
      ++R.Regressions;
    R.Deltas.push_back(std::move(D));
  }

  for (size_t I = 0; I < Opts.Rules.size(); ++I)
    if (!RuleMatched[I])
      R.Warnings.push_back("threshold rule '" + Opts.Rules[I].Pattern +
                           "' matched no metrics");
  return R;
}

bool bpcr::parseThresholdRules(const std::string &Text, CompareOptions &Opts,
                               std::string &Error) {
  JsonValue Doc = parseJson(Text, Error);
  if (!Error.empty())
    return false;
  if (Doc.kind() != JsonValue::Kind::Object) {
    Error = "threshold file must be a JSON object";
    return false;
  }

  auto ParseRule = [&Error](const JsonValue &J, const std::string &Where,
                            CompareRule &Rule) {
    if (J.kind() == JsonValue::Kind::Int ||
        J.kind() == JsonValue::Kind::Double) {
      Rule.MaxRelDelta = J.asDouble();
      if (Rule.MaxRelDelta < 0.0) {
        Error = Where + ": max_rel_delta must be >= 0";
        return false;
      }
      return true;
    }
    if (J.kind() != JsonValue::Kind::Object) {
      Error = Where + ": rule must be a number or an object";
      return false;
    }
    for (const auto &[Key, Val] : J.members()) {
      if (Key == "pattern") {
        if (Val.kind() != JsonValue::Kind::String || Val.asString().empty()) {
          Error = Where + ": 'pattern' must be a non-empty string";
          return false;
        }
        Rule.Pattern = Val.asString();
      } else if (Key == "max_rel_delta") {
        if (!Val.isNumber() || Val.asDouble() < 0.0) {
          Error = Where + ": 'max_rel_delta' must be a number >= 0";
          return false;
        }
        Rule.MaxRelDelta = Val.asDouble();
      } else if (Key == "direction") {
        const std::string &S = Val.asString();
        if (S == "up")
          Rule.Direction = DeltaDirection::Up;
        else if (S == "down")
          Rule.Direction = DeltaDirection::Down;
        else if (S == "both")
          Rule.Direction = DeltaDirection::Both;
        else {
          Error = Where + ": 'direction' must be \"up\", \"down\" or "
                          "\"both\"";
          return false;
        }
      } else if (Key == "skip") {
        if (Val.kind() != JsonValue::Kind::Bool) {
          Error = Where + ": 'skip' must be a boolean";
          return false;
        }
        Rule.Skip = Val.asBool();
      } else {
        Error = Where + ": unknown key '" + Key + "'";
        return false;
      }
    }
    return true;
  };

  for (const auto &[Key, Val] : Doc.members()) {
    if (Key == "rules") {
      if (Val.kind() != JsonValue::Kind::Array) {
        Error = "'rules' must be an array";
        return false;
      }
      for (size_t I = 0; I < Val.size(); ++I) {
        CompareRule Rule;
        std::string Where = "rules[" + std::to_string(I) + "]";
        if (!ParseRule(Val.at(I), Where, Rule))
          return false;
        if (Rule.Pattern.empty()) {
          Error = Where + ": missing 'pattern'";
          return false;
        }
        Opts.Rules.push_back(std::move(Rule));
      }
    } else if (Key == "default") {
      CompareRule Rule;
      if (!ParseRule(Val, "'default'", Rule))
        return false;
      // A 'default' entry may not override the pattern.
      Rule.Pattern = std::string("*");
      Opts.Rules.push_back(std::move(Rule));
    } else {
      Error = "unknown top-level key '" + Key +
              "' (expected 'rules' and/or 'default')";
      return false;
    }
  }
  return true;
}

std::string bpcr::renderCompareResult(const CompareResult &R) {
  std::string Out;
  for (const std::string &W : R.Warnings)
    Out += "warning: " + W + "\n";
  for (const std::string &E : R.Errors)
    Out += "error: " + E + "\n";
  if (!R.Errors.empty())
    return Out;

  TablePrinter Table("Report comparison (relative deltas vs. thresholds)");
  Table.setHeader({"metric", "old", "new", "delta", "threshold", "status"});
  unsigned Unchanged = 0, Shown = 0, Skipped = 0;
  for (const MetricDelta &D : R.Deltas) {
    if (D.Skipped)
      ++Skipped;
    bool Changed = D.MissingOld || D.MissingNew || D.RelDelta != 0.0;
    if (!Changed && !D.Regressed) {
      ++Unchanged;
      continue;
    }
    char Thr[64];
    if (D.Skipped)
      std::snprintf(Thr, sizeof(Thr), "(skip)");
    else
      std::snprintf(Thr, sizeof(Thr), "%.4g %s", D.Threshold,
                    directionName(D.Direction));
    Table.addRow({D.Name, D.MissingOld ? "-" : formatValue(D.Old),
                  D.MissingNew ? "-" : formatValue(D.New), formatDelta(D),
                  Thr,
                  D.Regressed ? "FAIL" : (D.Skipped ? "skip" : "ok")});
    ++Shown;
  }
  if (Shown)
    Out += Table.render() + "\n";

  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "%zu metrics compared: %u changed, %u unchanged (%u "
                "report-only); %u regression%s\n",
                R.Deltas.size(), Shown, Unchanged, Skipped, R.Regressions,
                R.Regressions == 1 ? "" : "s");
  Out += Buf;
  return Out;
}

JsonValue bpcr::compareResultJson(const CompareResult &R) {
  JsonValue Doc = JsonValue::object();
  Doc.set("ok", JsonValue::boolean(R.ok()));
  Doc.set("regressions",
          JsonValue::integer(static_cast<int64_t>(R.Regressions)));
  Doc.set("metrics_compared",
          JsonValue::integer(static_cast<int64_t>(R.Deltas.size())));

  JsonValue Errors = JsonValue::array();
  for (const std::string &E : R.Errors)
    Errors.push(JsonValue::str(E));
  Doc.set("errors", std::move(Errors));

  JsonValue Warnings = JsonValue::array();
  for (const std::string &W : R.Warnings)
    Warnings.push(JsonValue::str(W));
  Doc.set("warnings", std::move(Warnings));

  JsonValue Deltas = JsonValue::array();
  for (const MetricDelta &D : R.Deltas) {
    JsonValue J = JsonValue::object();
    J.set("name", JsonValue::str(D.Name));
    if (!D.MissingOld)
      J.set("old", JsonValue::number(D.Old));
    if (!D.MissingNew)
      J.set("new", JsonValue::number(D.New));
    // JSON has no infinity; a zero->nonzero jump serializes as "inf".
    if (std::isinf(D.RelDelta))
      J.set("rel_delta", JsonValue::str(D.RelDelta > 0 ? "inf" : "-inf"));
    else
      J.set("rel_delta", JsonValue::number(D.RelDelta));
    J.set("rule", JsonValue::str(D.RulePattern));
    J.set("threshold", JsonValue::number(D.Threshold));
    J.set("direction", JsonValue::str(directionName(D.Direction)));
    const char *Status = D.Regressed    ? "fail"
                         : D.Skipped    ? "skip"
                         : D.MissingOld ? "added"
                         : D.MissingNew ? "removed"
                                        : "ok";
    J.set("status", JsonValue::str(Status));
    Deltas.push(std::move(J));
  }
  Doc.set("deltas", std::move(Deltas));
  return Doc;
}
