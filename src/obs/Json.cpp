//===- obs/Json.cpp -------------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace bpcr;

JsonValue &JsonValue::set(const std::string &Key, JsonValue V) {
  for (auto &[K2, V2] : Obj)
    if (K2 == Key) {
      V2 = std::move(V);
      return V2;
    }
  Obj.emplace_back(Key, std::move(V));
  return Obj.back().second;
}

const JsonValue *JsonValue::find(const std::string &Key) const {
  for (const auto &[K2, V2] : Obj)
    if (K2 == Key)
      return &V2;
  return nullptr;
}

bool JsonValue::operator==(const JsonValue &O) const {
  if (isNumber() && O.isNumber())
    return asDouble() == O.asDouble() && asInt() == O.asInt();
  if (K != O.K)
    return false;
  switch (K) {
  case Kind::Null:
    return true;
  case Kind::Bool:
    return B == O.B;
  case Kind::Int:
  case Kind::Double:
    return true; // handled above
  case Kind::String:
    return S == O.S;
  case Kind::Array:
    return Arr == O.Arr;
  case Kind::Object:
    return Obj == O.Obj;
  }
  return false;
}

namespace {

void escapeInto(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void dumpInto(std::string &Out, const JsonValue &V, unsigned Indent,
              unsigned Depth) {
  auto Newline = [&](unsigned D) {
    if (!Indent)
      return;
    Out += '\n';
    Out.append(static_cast<size_t>(Indent) * D, ' ');
  };

  switch (V.kind()) {
  case JsonValue::Kind::Null:
    Out += "null";
    break;
  case JsonValue::Kind::Bool:
    Out += V.asBool() ? "true" : "false";
    break;
  case JsonValue::Kind::Int: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld",
                  static_cast<long long>(V.asInt()));
    Out += Buf;
    break;
  }
  case JsonValue::Kind::Double: {
    double D = V.asDouble();
    if (!std::isfinite(D)) {
      Out += "null"; // JSON has no Inf/NaN
      break;
    }
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.17g", D);
    // Keep a marker so the value re-parses as a double.
    if (!std::strpbrk(Buf, ".eE"))
      std::strcat(Buf, ".0");
    Out += Buf;
    break;
  }
  case JsonValue::Kind::String:
    escapeInto(Out, V.asString());
    break;
  case JsonValue::Kind::Array: {
    if (V.items().empty()) {
      Out += "[]";
      break;
    }
    Out += '[';
    bool First = true;
    for (const JsonValue &E : V.items()) {
      if (!First)
        Out += ',';
      First = false;
      Newline(Depth + 1);
      dumpInto(Out, E, Indent, Depth + 1);
    }
    Newline(Depth);
    Out += ']';
    break;
  }
  case JsonValue::Kind::Object: {
    if (V.members().empty()) {
      Out += "{}";
      break;
    }
    Out += '{';
    bool First = true;
    for (const auto &[Key, Val] : V.members()) {
      if (!First)
        Out += ',';
      First = false;
      Newline(Depth + 1);
      escapeInto(Out, Key);
      Out += Indent ? ": " : ":";
      dumpInto(Out, Val, Indent, Depth + 1);
    }
    Newline(Depth);
    Out += '}';
    break;
  }
  }
}

/// Strict recursive-descent parser over a byte range.
class Parser {
public:
  Parser(const std::string &Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool parse(JsonValue &Out) {
    skipSpace();
    if (!parseValue(Out))
      return false;
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing characters after document");
    return true;
  }

private:
  const std::string &Text;
  std::string &Error;
  size_t Pos = 0;

  bool fail(const std::string &Msg) {
    Error = Msg + " at byte " + std::to_string(Pos);
    return false;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Word) {
    size_t Len = std::strlen(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return fail(std::string("invalid literal, expected '") + Word + "'");
    Pos += Len;
    return true;
  }

  bool parseValue(JsonValue &Out) {
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case 'n':
      if (!literal("null"))
        return false;
      Out = JsonValue::null();
      return true;
    case 't':
      if (!literal("true"))
        return false;
      Out = JsonValue::boolean(true);
      return true;
    case 'f':
      if (!literal("false"))
        return false;
      Out = JsonValue::boolean(false);
      return true;
    case '"':
      return parseString(Out);
    case '[':
      return parseArray(Out);
    case '{':
      return parseObject(Out);
    default:
      return parseNumber(Out);
    }
  }

  bool parseString(JsonValue &Out) {
    std::string S;
    if (!parseRawString(S))
      return false;
    Out = JsonValue::str(std::move(S));
    return true;
  }

  bool parseRawString(std::string &S) {
    if (!consume('"'))
      return fail("expected '\"'");
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        S += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        S += E;
        break;
      case 'n':
        S += '\n';
        break;
      case 'r':
        S += '\r';
        break;
      case 't':
        S += '\t';
        break;
      case 'b':
        S += '\b';
        break;
      case 'f':
        S += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned V = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          V <<= 4;
          if (H >= '0' && H <= '9')
            V |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            V |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            V |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad hex digit in \\u escape");
        }
        // UTF-8 encode (BMP only; surrogate pairs are not needed for the
        // ASCII metric names this project emits).
        if (V < 0x80) {
          S += static_cast<char>(V);
        } else if (V < 0x800) {
          S += static_cast<char>(0xC0 | (V >> 6));
          S += static_cast<char>(0x80 | (V & 0x3F));
        } else {
          S += static_cast<char>(0xE0 | (V >> 12));
          S += static_cast<char>(0x80 | ((V >> 6) & 0x3F));
          S += static_cast<char>(0x80 | (V & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    (void)consume('-');
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
      ++Pos;
    bool IsInt = true;
    if (consume('.')) {
      IsInt = false;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      IsInt = false;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    std::string Num = Text.substr(Start, Pos - Start);
    if (Num.empty() || Num == "-")
      return fail("invalid number");
    errno = 0;
    if (IsInt) {
      char *End = nullptr;
      long long V = std::strtoll(Num.c_str(), &End, 10);
      if (End == Num.c_str() + Num.size() && errno == 0) {
        Out = JsonValue::integer(static_cast<int64_t>(V));
        return true;
      }
      // Fall through to double on int64 overflow.
    }
    char *End = nullptr;
    double D = std::strtod(Num.c_str(), &End);
    if (End != Num.c_str() + Num.size())
      return fail("invalid number");
    Out = JsonValue::number(D);
    return true;
  }

  bool parseArray(JsonValue &Out) {
    consume('[');
    Out = JsonValue::array();
    skipSpace();
    if (consume(']'))
      return true;
    while (true) {
      JsonValue E;
      skipSpace();
      if (!parseValue(E))
        return false;
      Out.push(std::move(E));
      skipSpace();
      if (consume(']'))
        return true;
      if (!consume(','))
        return fail("expected ',' or ']' in array");
    }
  }

  bool parseObject(JsonValue &Out) {
    consume('{');
    Out = JsonValue::object();
    skipSpace();
    if (consume('}'))
      return true;
    while (true) {
      skipSpace();
      std::string Key;
      if (!parseRawString(Key))
        return false;
      skipSpace();
      if (!consume(':'))
        return fail("expected ':' after object key");
      JsonValue V;
      skipSpace();
      if (!parseValue(V))
        return false;
      Out.set(Key, std::move(V));
      skipSpace();
      if (consume('}'))
        return true;
      if (!consume(','))
        return fail("expected ',' or '}' in object");
    }
  }
};

} // namespace

std::string JsonValue::dump(unsigned Indent) const {
  std::string Out;
  dumpInto(Out, *this, Indent, 0);
  if (Indent)
    Out += '\n';
  return Out;
}

JsonValue bpcr::parseJson(const std::string &Text, std::string &Error) {
  Error.clear();
  JsonValue Out;
  Parser P(Text, Error);
  if (!P.parse(Out))
    return JsonValue::null();
  return Out;
}

namespace {

bool findNonFiniteInto(const JsonValue &V, std::string &Path) {
  switch (V.kind()) {
  case JsonValue::Kind::Double:
    return !std::isfinite(V.asDouble());
  case JsonValue::Kind::Array: {
    size_t Idx = 0;
    for (const JsonValue &E : V.items()) {
      size_t Mark = Path.size();
      if (!Path.empty())
        Path += '.';
      Path += std::to_string(Idx);
      if (findNonFiniteInto(E, Path))
        return true;
      Path.resize(Mark);
      ++Idx;
    }
    return false;
  }
  case JsonValue::Kind::Object:
    for (const auto &[Key, Val] : V.members()) {
      size_t Mark = Path.size();
      if (!Path.empty())
        Path += '.';
      Path += Key;
      if (findNonFiniteInto(Val, Path))
        return true;
      Path.resize(Mark);
    }
    return false;
  default:
    return false;
  }
}

} // namespace

std::string bpcr::findNonFinitePath(const JsonValue &V) {
  std::string Path;
  if (findNonFiniteInto(V, Path))
    return Path.empty() ? "<root>" : Path;
  return "";
}
