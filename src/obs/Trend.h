//===- obs/Trend.h - Cross-run trend analytics and gating -------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a run ledger (obs/Ledger.h) into per-metric longitudinal series
/// and asks the statistical questions a single pairwise diff cannot:
///
///  * Where does a metric normally sit? Rolling median with a MAD band
///    (MADN = 1.4826 * MAD, the normal-consistent scale), robust to the
///    occasional bad run.
///  * Which runs are anomalous? Values more than OutlierK * MADN from the
///    median.
///  * Did the level *shift*? The binary-segmentation change-point detector
///    from obs/TimeSeries.h, applied across runs with unit weights. The
///    noise floor for a credible step is estimated from successive
///    differences (sigma = 1.4826 * median|v_i - v_{i-1}| / sqrt(2)),
///    which stays honest even when the step itself inflates the global
///    MAD.
///
/// Steps are gated through the same first-match-wins threshold rules as
/// `bpcr compare` (skip rules silence wall-clock series; a matched
/// max_rel_delta must be exceeded in the rule's bad direction for a step
/// to count as a regression). `bpcr trend` maps the result to exit codes:
/// 2 on step regressions, 1 when only the latest run is an outlier on a
/// gated series, 0 otherwise.
///
/// compareAgainstLedger() is the second consumer: it gates a fresh report
/// against median ± max(rule threshold * |median|, BandK * MADN) per
/// metric — `bpcr compare --ledger`, replacing the single checked-in
/// baseline file with the rolling band.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_OBS_TREND_H
#define BPCR_OBS_TREND_H

#include "obs/Compare.h"
#include "obs/Ledger.h"

#include <string>
#include <vector>

namespace bpcr {

struct TrendOptions {
  /// Glob over series names; non-matching series are dropped entirely.
  std::string MetricGlob = "*";
  /// Analyze only the newest N records (0 = all).
  size_t LastN = 0;
  /// Outlier band half-width in MADN units.
  double OutlierK = 4.0;
  /// Step credibility gate: a split must move the mean by at least
  /// StepK * sigma (successive-difference noise estimate).
  double StepK = 3.0;
  /// Band half-width in MADN units for compareAgainstLedger().
  double BandK = 4.0;
  /// Series shorter than this are shown but never gated.
  uint32_t MinRuns = 4;
  /// Minimum runs on each side of a change point.
  uint32_t MinSegment = 2;
  /// Threshold rules (user rules first; defaults appended internally).
  CompareOptions Rules;
};

/// One metric's history across the analyzed ledger window.
struct TrendSeries {
  /// Flattened metric name; prefixed "tool/workload:" only when the ledger
  /// mixes runs from different contexts.
  std::string Name;
  /// Oldest to newest, one entry per analyzed record carrying the metric.
  std::vector<double> Values;
  /// Ledger record index (0-based, whole file) behind each value.
  std::vector<size_t> Runs;
  double Median = 0.0;
  /// 1.4826 * median absolute deviation (0 for a constant series).
  double Madn = 0.0;
  /// Successive-difference noise sigma (step-robust).
  double Sigma = 0.0;
  /// Positions in Values outside median +- OutlierK * MADN.
  std::vector<size_t> Outliers;
  /// Last detected change point: Values[StepAt] starts the new level.
  bool HasStep = false;
  size_t StepAt = 0;
  double StepBefore = 0.0;
  double StepAfter = 0.0;
  /// (after - before) / |before|; HUGE_VAL when before == 0.
  double StepRelDelta = 0.0;
  /// Matched threshold rule ("(short history)" when below MinRuns).
  std::string RulePattern;
  double Threshold = 0.0;
  DeltaDirection Direction = DeltaDirection::Both;
  bool Skipped = false;
  /// Step moved the level beyond the threshold in the bad direction.
  bool Regressed = false;
};

struct TrendResult {
  std::vector<TrendSeries> Series;
  std::vector<std::string> Warnings;
  std::vector<std::string> Errors;
  /// Gated series whose last level shift is a regression (exit 2).
  unsigned Regressions = 0;
  /// Gated series whose *latest* run is an outlier (exit 1). Historical
  /// outliers are reported but do not fail the gate — they already did.
  unsigned LatestOutliers = 0;
  size_t RunsAnalyzed = 0;
};

/// Builds and analyzes every metric series of \p Records (oldest first,
/// i.e. readLedger order) under \p Opts.
TrendResult analyzeTrends(const std::vector<LedgerRecord> &Records,
                          const TrendOptions &Opts);

/// Gates \p NewReport against the rolling band of \p History: per metric,
/// regression when the new value falls outside median +- max(threshold *
/// |median|, BandK * MADN) in the rule's bad direction. History records
/// from a different tool/workload context than the report are ignored
/// (with a warning when that empties the history).
CompareResult compareAgainstLedger(const std::vector<LedgerRecord> &History,
                                   const JsonValue &NewReport,
                                   const TrendOptions &Opts);

/// Human table: one row per series (median, MADN, latest, outliers, step
/// markers like "step@8"), optional unicode sparkline column, then a
/// summary line. Exit-code mapping is the caller's job.
std::string renderTrendTable(const TrendResult &R, bool Sparkline);

/// CSV, one row per series, stable header order.
std::string renderTrendCsv(const TrendResult &R);

/// Machine-readable document for `bpcr trend --format json`.
JsonValue trendJson(const TrendResult &R);

} // namespace bpcr

#endif // BPCR_OBS_TREND_H
