//===- obs/Report.h - Machine-readable run reports --------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a metrics Registry — and, for pipeline runs, the
/// PipelineResult with its per-branch DecisionLog — into a stable JSON
/// schema. `bpcr --metrics`, `bpcr report` and the bench binaries all emit
/// this format, so BENCH_*.json files are comparable across PRs. The schema
/// is versioned (ReportSchemaVersion, "schema_version" in the output) and
/// documented in docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_OBS_REPORT_H
#define BPCR_OBS_REPORT_H

#include "obs/Json.h"
#include "obs/Metrics.h"

#include <string>

namespace bpcr {

struct PipelineResult;

/// Bump when the report layout changes incompatibly.
/// Version history:
///   1 — metrics + pipeline sections.
///   2 — adds the "branches" attribution section (top-K Pareto view plus
///       per-branch "by_id" leaves) to pipeline reports.
///   3 — adds the "timeline" section (windowed misprediction series, phase
///       segmentation, warmup boundary, per-phase top-K branch splits) to
///       pipeline reports.
///   4 — adds the gated "profile" section (self-profiling: per-category
///       self/total wall+CPU span times with opened/recorded/dropped
///       counts, per-site stats, RSS samples, counting-allocator totals,
///       pool.* utilization) when the profiler is enabled.
constexpr int ReportSchemaVersion = 4;

/// Context describing the run being reported.
struct ReportMeta {
  /// Producing binary ("bpcr", "headline_replication", ...).
  std::string Tool = "bpcr";
  /// Subcommand or mode ("replicate", "bench", ...).
  std::string Command;
  /// Workload name when the run concerned a single workload.
  std::string Workload;
  uint64_t Seed = 0;
  /// Branch-event cap of the run (0 = not applicable).
  uint64_t Events = 0;
  /// Entries in the report's "branches.top" Pareto list.
  unsigned BranchTopK = 10;
};

/// The registry's counters/gauges/histograms/phase timers as one object.
JsonValue metricsJson(const Registry &R);

/// PipelineResult summary plus its decision log.
JsonValue pipelineJson(const PipelineResult &PR);

/// Full report document; \p PR adds the "pipeline" section when non-null
/// and the "branches" attribution section when its ledger is non-empty.
JsonValue buildReport(const ReportMeta &Meta, const Registry &R,
                      const PipelineResult *PR = nullptr);

/// Pretty-prints \p Report to \p Path. \returns false and sets \p Error on
/// I/O failure or when \p Report contains a non-finite number (the error
/// names the offending member's path).
bool writeReportFile(const std::string &Path, const JsonValue &Report,
                     std::string &Error);

} // namespace bpcr

#endif // BPCR_OBS_REPORT_H
