//===- obs/Trend.cpp - Cross-run trend analytics and gating ---------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Trend.h"

#include "obs/TimeSeries.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

using namespace bpcr;

namespace {

constexpr double Eps = 1e-12;
/// Scale factor making the MAD consistent with a normal sigma.
constexpr double MadToSigma = 1.4826;

double median(std::vector<double> V) {
  if (V.empty())
    return 0.0;
  std::sort(V.begin(), V.end());
  size_t Mid = V.size() / 2;
  return V.size() % 2 ? V[Mid] : 0.5 * (V[Mid - 1] + V[Mid]);
}

double madn(const std::vector<double> &V, double Median) {
  std::vector<double> Devs;
  Devs.reserve(V.size());
  for (double X : V)
    Devs.push_back(std::fabs(X - Median));
  return MadToSigma * median(std::move(Devs));
}

/// Noise sigma from successive differences: robust to the very level
/// shifts we are hunting, unlike the whole-series MAD.
double successiveDiffSigma(const std::vector<double> &V) {
  if (V.size() < 2)
    return 0.0;
  std::vector<double> Diffs;
  Diffs.reserve(V.size() - 1);
  for (size_t I = 1; I < V.size(); ++I)
    Diffs.push_back(std::fabs(V[I] - V[I - 1]));
  return MadToSigma * median(std::move(Diffs)) / std::sqrt(2.0);
}

double relDelta(double Before, double Delta) {
  if (Before == 0.0)
    return Delta == 0.0 ? 0.0 : HUGE_VAL;
  return Delta / std::fabs(Before);
}

bool badDirection(double Delta, DeltaDirection Dir) {
  switch (Dir) {
  case DeltaDirection::Up:
    return Delta > 0.0;
  case DeltaDirection::Down:
    return Delta < 0.0;
  case DeltaDirection::Both:
    return Delta != 0.0;
  }
  return false;
}

const CompareRule *matchRule(const std::vector<CompareRule> &Rules,
                             const std::string &Name) {
  for (const CompareRule &R : Rules)
    if (globMatch(R.Pattern, Name))
      return &R;
  return nullptr;
}

std::vector<CompareRule> effectiveRules(const TrendOptions &Opts) {
  std::vector<CompareRule> Rules = Opts.Rules.Rules;
  std::vector<CompareRule> Defaults = defaultCompareRules();
  Rules.insert(Rules.end(), Defaults.begin(), Defaults.end());
  return Rules;
}

/// "tool/workload" context key; series from different contexts must not be
/// spliced into one trend line.
std::string contextKey(const LedgerMeta &M) {
  return M.Tool + "/" + M.Workload;
}

std::string formatValue(double V) {
  char Buf[64];
  if (V == static_cast<int64_t>(V) && std::fabs(V) < 1e15)
    std::snprintf(Buf, sizeof(Buf), "%lld", (long long)V);
  else
    std::snprintf(Buf, sizeof(Buf), "%.4g", V);
  return Buf;
}

std::string sparkline(const std::vector<double> &V) {
  static const char *const Blocks[] = {"▁", "▂", "▃",
                                       "▄", "▅", "▆",
                                       "▇", "█"};
  double Lo = V[0], Hi = V[0];
  for (double X : V) {
    Lo = std::min(Lo, X);
    Hi = std::max(Hi, X);
  }
  std::string Out;
  for (double X : V) {
    size_t Idx = 3; // flat series sits mid-scale
    if (Hi > Lo)
      Idx = std::min<size_t>(7, size_t((X - Lo) / (Hi - Lo) * 7.999));
    Out += Blocks[Idx];
  }
  return Out;
}

} // namespace

TrendResult bpcr::analyzeTrends(const std::vector<LedgerRecord> &Records,
                                const TrendOptions &Opts) {
  TrendResult Result;

  size_t Begin = 0;
  if (Opts.LastN != 0 && Records.size() > Opts.LastN)
    Begin = Records.size() - Opts.LastN;
  Result.RunsAnalyzed = Records.size() - Begin;

  // Does the window mix tool/workload contexts? If so, prefix the series
  // names so e.g. two benches' counters.interp.* never merge.
  std::map<std::string, unsigned> Contexts;
  for (size_t I = Begin; I < Records.size(); ++I)
    ++Contexts[contextKey(Records[I].Meta)];
  bool MixedContexts = Contexts.size() > 1;
  if (MixedContexts)
    Result.Warnings.push_back(
        "ledger mixes " + std::to_string(Contexts.size()) +
        " tool/workload contexts; series are prefixed with their context");

  // Gather series in first-appearance order (oldest record first).
  std::vector<TrendSeries> Series;
  std::map<std::string, size_t> Index;
  auto Add = [&](const std::string &Name, double Value, size_t Run) {
    if (!globMatch(Opts.MetricGlob, Name))
      return;
    auto It = Index.find(Name);
    if (It == Index.end()) {
      It = Index.emplace(Name, Series.size()).first;
      Series.emplace_back();
      Series.back().Name = Name;
    }
    TrendSeries &S = Series[It->second];
    S.Values.push_back(Value);
    S.Runs.push_back(Run);
  };
  for (size_t I = Begin; I < Records.size(); ++I) {
    const LedgerRecord &R = Records[I];
    std::string Prefix =
        MixedContexts ? contextKey(R.Meta) + ":" : std::string();
    for (const auto &[Name, Value] : R.Metrics)
      Add(Prefix + Name, Value, I);
    for (const auto &[Name, Value] : R.Perf)
      Add(Prefix + Name, Value, I);
  }

  std::vector<CompareRule> Rules = effectiveRules(Opts);
  for (TrendSeries &S : Series) {
    S.Median = median(S.Values);
    S.Madn = madn(S.Values, S.Median);
    S.Sigma = successiveDiffSigma(S.Values);

    // The rule name match uses the unprefixed metric name so one threshold
    // file serves every context.
    std::string RuleName = S.Name;
    if (MixedContexts) {
      size_t Colon = RuleName.find(':');
      if (Colon != std::string::npos)
        RuleName = RuleName.substr(Colon + 1);
    }
    if (const CompareRule *Rule = matchRule(Rules, RuleName)) {
      S.RulePattern = Rule->Pattern;
      S.Threshold = Rule->MaxRelDelta;
      S.Direction = Rule->Direction;
      S.Skipped = Rule->Skip;
    }
    if (S.Values.size() < Opts.MinRuns) {
      S.RulePattern = "(short history)";
      S.Skipped = true;
    }

    // Outliers against the full-window band. The band floor keeps a
    // constant deterministic series strict: any change at all is flagged.
    double Band = Opts.OutlierK * S.Madn + Eps * std::max(1.0, std::fabs(S.Median));
    for (size_t I = 0; I < S.Values.size(); ++I)
      if (std::fabs(S.Values[I] - S.Median) > Band)
        S.Outliers.push_back(I);

    // Step detection: unit weights, noise-scaled MinDelta.
    SeriesSegmentationOptions SOpts;
    SOpts.MinDelta = Opts.StepK * S.Sigma;
    SOpts.MinSegment = Opts.MinSegment;
    SOpts.MaxSegments = 16;
    std::vector<double> Weights(S.Values.size(), 1.0);
    std::vector<size_t> Cuts = segmentSeries(S.Values, Weights, SOpts);
    if (!Cuts.empty()) {
      size_t Cut = Cuts.back();
      size_t PrevLo = Cuts.size() >= 2 ? Cuts[Cuts.size() - 2] : 0;
      double Before = 0.0, After = 0.0;
      for (size_t I = PrevLo; I < Cut; ++I)
        Before += S.Values[I];
      Before /= double(Cut - PrevLo);
      for (size_t I = Cut; I < S.Values.size(); ++I)
        After += S.Values[I];
      After /= double(S.Values.size() - Cut);
      S.HasStep = true;
      S.StepAt = Cut;
      S.StepBefore = Before;
      S.StepAfter = After;
      S.StepRelDelta = relDelta(Before, After - Before);
    }

    if (!S.Skipped) {
      if (S.HasStep && badDirection(S.StepAfter - S.StepBefore, S.Direction) &&
          std::fabs(S.StepRelDelta) > S.Threshold + Eps) {
        S.Regressed = true;
        ++Result.Regressions;
      }
      if (!S.Outliers.empty() &&
          S.Outliers.back() + 1 == S.Values.size())
        ++Result.LatestOutliers;
    }
  }

  Result.Series = std::move(Series);
  return Result;
}

CompareResult
bpcr::compareAgainstLedger(const std::vector<LedgerRecord> &History,
                           const JsonValue &NewReport,
                           const TrendOptions &Opts) {
  CompareResult Result;

  LedgerMeta Meta; // context only; volatile fields irrelevant here
  LedgerRecord NewRecord;
  std::string Error;
  if (!makeLedgerRecord(NewReport, Meta, NewRecord, Error)) {
    Result.Errors.push_back(Error);
    return Result;
  }

  // Restrict the history to the report's tool/workload context when the
  // ledger has matching records; otherwise fall back to everything.
  std::string Key = contextKey(NewRecord.Meta);
  std::vector<const LedgerRecord *> Relevant;
  for (const LedgerRecord &R : History)
    if (contextKey(R.Meta) == Key)
      Relevant.push_back(&R);
  if (Relevant.empty()) {
    if (!History.empty())
      Result.Warnings.push_back(
          "no ledger records match context '" + Key +
          "'; gating against all " + std::to_string(History.size()) +
          " records");
    for (const LedgerRecord &R : History)
      Relevant.push_back(&R);
  }
  size_t Begin = 0;
  if (Opts.LastN != 0 && Relevant.size() > Opts.LastN)
    Begin = Relevant.size() - Opts.LastN;

  std::map<std::string, std::vector<double>> Hist;
  for (size_t I = Begin; I < Relevant.size(); ++I) {
    for (const auto &[Name, Value] : Relevant[I]->Metrics)
      Hist[Name].push_back(Value);
    for (const auto &[Name, Value] : Relevant[I]->Perf)
      Hist[Name].push_back(Value);
  }

  std::vector<CompareRule> Rules = effectiveRules(Opts);
  auto Gate = [&](const std::string &Name, double Value) {
    MetricDelta D;
    D.Name = Name;
    D.New = Value;
    if (const CompareRule *Rule = matchRule(Rules, Name)) {
      D.RulePattern = Rule->Pattern;
      D.Threshold = Rule->MaxRelDelta;
      D.Direction = Rule->Direction;
      D.Skipped = Rule->Skip;
    }
    auto It = Hist.find(Name);
    if (It == Hist.end() || It->second.size() < 2) {
      // Not enough history to form a band; report, never gate.
      D.MissingOld = It == Hist.end();
      D.Skipped = true;
      if (!D.MissingOld)
        D.RulePattern = "(short history)";
      Result.Deltas.push_back(std::move(D));
      return;
    }
    double Median = median(It->second);
    double Band = Opts.BandK * madn(It->second, Median);
    D.Old = Median;
    double Delta = Value - Median;
    D.RelDelta = relDelta(Median, Delta);
    if (!D.Skipped) {
      double Allowed =
          std::max(D.Threshold * std::fabs(Median), Band) +
          Eps * std::max(1.0, std::fabs(Median));
      if (badDirection(Delta, D.Direction) && std::fabs(Delta) > Allowed) {
        D.Regressed = true;
        ++Result.Regressions;
      }
    }
    Result.Deltas.push_back(std::move(D));
  };
  for (const auto &[Name, Value] : NewRecord.Metrics)
    Gate(Name, Value);
  for (const auto &[Name, Value] : NewRecord.Perf)
    Gate(Name, Value);

  if (Hist.empty())
    Result.Warnings.push_back("empty ledger history: nothing was gated");
  return Result;
}

std::string bpcr::renderTrendTable(const TrendResult &R, bool Sparkline) {
  std::string Out;
  for (const std::string &W : R.Warnings)
    Out += "warning: " + W + "\n";
  for (const std::string &E : R.Errors)
    Out += "error: " + E + "\n";

  size_t NameWidth = 6;
  for (const TrendSeries &S : R.Series)
    NameWidth = std::max(NameWidth, S.Name.size());

  char Buf[512];
  std::snprintf(Buf, sizeof(Buf), "%-*s  %4s  %12s  %10s  %12s  %s\n",
                (int)NameWidth, "metric", "runs", "median", "madn",
                "latest", Sparkline ? "trend  status" : "status");
  Out += Buf;
  for (const TrendSeries &S : R.Series) {
    std::string Status;
    if (S.Regressed) {
      std::snprintf(Buf, sizeof(Buf), "REGRESSED step@%zu %+.1f%%",
                    S.StepAt, S.StepRelDelta * 100.0);
      Status = Buf;
    } else if (S.HasStep && !S.Skipped) {
      std::snprintf(Buf, sizeof(Buf), "step@%zu %+.1f%%", S.StepAt,
                    S.StepRelDelta * 100.0);
      Status = Buf;
    } else if (S.Skipped) {
      Status = "skip";
      if (!S.RulePattern.empty())
        Status += " (" + S.RulePattern + ")";
    } else {
      Status = "ok";
    }
    if (!S.Outliers.empty() && !S.Skipped) {
      Status += "  outliers:";
      for (size_t I = 0; I < S.Outliers.size(); ++I)
        Status += (I ? "," : "") + std::to_string(S.Outliers[I]);
    }
    std::string Latest =
        S.Values.empty() ? "-" : formatValue(S.Values.back());
    std::string Spark =
        Sparkline && !S.Values.empty() ? sparkline(S.Values) + "  " : "";
    std::snprintf(Buf, sizeof(Buf), "%-*s  %4zu  %12s  %10.4g  %12s  ",
                  (int)NameWidth, S.Name.c_str(), S.Values.size(),
                  formatValue(S.Median).c_str(), S.Madn, Latest.c_str());
    Out += Buf;
    Out += Spark + Status + "\n";
  }

  std::snprintf(Buf, sizeof(Buf),
                "\n%zu run%s, %zu series: %u step regression%s, %u latest-run "
                "outlier%s\n",
                R.RunsAnalyzed, R.RunsAnalyzed == 1 ? "" : "s",
                R.Series.size(), R.Regressions, R.Regressions == 1 ? "" : "s",
                R.LatestOutliers, R.LatestOutliers == 1 ? "" : "s");
  Out += Buf;
  return Out;
}

std::string bpcr::renderTrendCsv(const TrendResult &R) {
  std::string Out = "metric,runs,median,madn,sigma,latest,outliers,step_at,"
                    "step_rel_delta,rule,status\n";
  char Buf[256];
  for (const TrendSeries &S : R.Series) {
    Out += S.Name + ",";
    std::snprintf(Buf, sizeof(Buf), "%zu,%.17g,%.17g,%.17g,",
                  S.Values.size(), S.Median, S.Madn, S.Sigma);
    Out += Buf;
    std::snprintf(Buf, sizeof(Buf), "%.17g,",
                  S.Values.empty() ? 0.0 : S.Values.back());
    Out += Buf;
    Out += std::to_string(S.Outliers.size()) + ",";
    if (S.HasStep) {
      std::snprintf(Buf, sizeof(Buf), "%zu,%.17g,", S.StepAt,
                    S.StepRelDelta);
      Out += Buf;
    } else {
      Out += ",,";
    }
    Out += S.RulePattern + ",";
    Out += S.Regressed ? "regressed" : (S.Skipped ? "skip" : "ok");
    Out += "\n";
  }
  return Out;
}

JsonValue bpcr::trendJson(const TrendResult &R) {
  JsonValue Doc = JsonValue::object();
  Doc.set("runs_analyzed",
          JsonValue::integer(static_cast<int64_t>(R.RunsAnalyzed)));
  Doc.set("step_regressions",
          JsonValue::integer(static_cast<int64_t>(R.Regressions)));
  Doc.set("latest_outliers",
          JsonValue::integer(static_cast<int64_t>(R.LatestOutliers)));

  JsonValue Warnings = JsonValue::array();
  for (const std::string &W : R.Warnings)
    Warnings.push(JsonValue::str(W));
  Doc.set("warnings", std::move(Warnings));
  JsonValue Errors = JsonValue::array();
  for (const std::string &E : R.Errors)
    Errors.push(JsonValue::str(E));
  Doc.set("errors", std::move(Errors));

  JsonValue Series = JsonValue::array();
  for (const TrendSeries &S : R.Series) {
    JsonValue Row = JsonValue::object();
    Row.set("metric", JsonValue::str(S.Name));
    Row.set("runs", JsonValue::integer(static_cast<int64_t>(S.Values.size())));
    Row.set("median", JsonValue::number(S.Median));
    Row.set("madn", JsonValue::number(S.Madn));
    Row.set("sigma", JsonValue::number(S.Sigma));
    JsonValue Values = JsonValue::array();
    for (double V : S.Values)
      Values.push(JsonValue::number(V));
    Row.set("values", std::move(Values));
    JsonValue Outliers = JsonValue::array();
    for (size_t I : S.Outliers)
      Outliers.push(JsonValue::integer(static_cast<int64_t>(I)));
    Row.set("outliers", std::move(Outliers));
    if (S.HasStep) {
      JsonValue Step = JsonValue::object();
      Step.set("at", JsonValue::integer(static_cast<int64_t>(S.StepAt)));
      Step.set("run", JsonValue::integer(static_cast<int64_t>(
                          S.Runs.empty() ? 0 : S.Runs[S.StepAt])));
      Step.set("before", JsonValue::number(S.StepBefore));
      Step.set("after", JsonValue::number(S.StepAfter));
      if (std::isfinite(S.StepRelDelta))
        Step.set("rel_delta", JsonValue::number(S.StepRelDelta));
      else
        Step.set("rel_delta", JsonValue::str("inf"));
      Row.set("step", std::move(Step));
    }
    Row.set("rule", JsonValue::str(S.RulePattern));
    Row.set("skipped", JsonValue::boolean(S.Skipped));
    Row.set("regressed", JsonValue::boolean(S.Regressed));
    Series.push(std::move(Row));
  }
  Doc.set("series", std::move(Series));
  Doc.set("ok", JsonValue::boolean(R.Errors.empty() && R.Regressions == 0));
  return Doc;
}
