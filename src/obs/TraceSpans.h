//===- obs/TraceSpans.h - Low-overhead span tracing -------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A wall-clock span tracer for the whole pipeline. Instrumentation sites
/// open RAII Span objects (nested spans form a timeline tree per thread);
/// each completed span lands in a per-thread buffer and the accumulated
/// timeline exports as Chrome Trace Event Format JSON — loadable in
/// chrome://tracing and the Perfetto UI — via `--trace-out FILE` on every
/// `bpcr` subcommand and bench binary.
///
/// The tracer follows the metrics registry's overhead rule: disabled by
/// default, and every site pays exactly one predictable branch when tracing
/// is off (the Span constructor reads no clock and allocates nothing).
/// High-frequency sites (one span per candidate machine inside the search)
/// are additionally *sampled*: once a category's recorded-span count passes
/// the per-category limit, further spans in it are dropped and counted in
/// the tracer's drop counter, mirrored to the `obs.trace.spans_dropped`
/// metrics counter when the registry is enabled.
///
/// Recording is header-only so low-level libraries (interp, core, cache)
/// can open spans without a link dependency on bpcr_obs; the JSON exporter
/// (spansJson/writeSpanTrace) lives in obs/TraceSpans.cpp. The span
/// taxonomy is documented in docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_OBS_TRACESPANS_H
#define BPCR_OBS_TRACESPANS_H

#include "obs/Metrics.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <ctime>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace bpcr {

/// One key/value annotation on a span ("args" in the Chrome format).
struct SpanArg {
  enum class Kind : uint8_t { Int, Double, Str };
  std::string Key;
  Kind K = Kind::Int;
  int64_t I = 0;
  double D = 0.0;
  std::string S;
};

/// One completed span. Names and categories are static strings (the
/// instrumentation vocabulary); dynamic context goes into Args.
struct SpanEvent {
  const char *Name = "";
  const char *Category = "";
  /// Nanoseconds since the tracer was enabled.
  uint64_t StartNs = 0;
  uint64_t DurNs = 0;
  /// CPU nanoseconds the recording thread spent inside the span, from
  /// CLOCK_THREAD_CPUTIME_ID captured at open and close. Zero when the
  /// platform has no per-thread CPU clock.
  uint64_t CpuDurNs = 0;
  /// Tracer-local thread number (0 for the first thread).
  uint32_t Tid = 0;
  /// Nesting depth at open time (0 = top level on its thread).
  uint32_t Depth = 0;
  std::vector<SpanArg> Args;
};

/// Per-category span accounting. Opened counts every span constructed while
/// the tracer was enabled — including ones the sampling cap then dropped —
/// so it is a pure function of the work done, independent of thread count
/// and schedule. Recorded counts only the spans that landed in a buffer;
/// the difference is what sampling dropped.
struct SpanCategoryCount {
  uint64_t Opened = 0;
  uint64_t Recorded = 0;
};

/// One sample on a counter track ("ph":"C" in the Chrome format): a value
/// at a timestamp, rendered by trace viewers as a stacked rate curve.
struct CounterSample {
  /// Nanoseconds since the tracer was enabled (same epoch as SpanEvent).
  uint64_t Ns = 0;
  double Value = 0.0;
};

/// A named series of counter samples, e.g. the timeline layer's windowed
/// misprediction rate, drawn on the same timeline as the spans.
struct CounterTrack {
  std::string Name;
  std::vector<CounterSample> Samples;
};

/// Collects spans into per-thread buffers. Spans on one thread never touch
/// a lock; the mutex guards only thread registration, counter tracks and
/// export.
class SpanTracer {
public:
  /// The process-wide tracer all built-in instrumentation records to.
  static SpanTracer &global() {
    static SpanTracer T;
    return T;
  }

  SpanTracer() = default;
  SpanTracer(const SpanTracer &) = delete;
  SpanTracer &operator=(const SpanTracer &) = delete;

  /// The acquire pairs with setEnabled's release: a worker thread that
  /// observes Enabled also observes the epoch written before it, keeping
  /// the pair race-free when the pool's workers start recording.
  bool enabled() const { return Enabled.load(std::memory_order_acquire); }

  /// Enabling (re)sets the timeline epoch: span timestamps are nanoseconds
  /// since the last setEnabled(true).
  void setEnabled(bool On) {
    if (On)
      Epoch = std::chrono::steady_clock::now();
    Enabled.store(On, std::memory_order_release);
  }

  /// Per-category recorded-span cap; spans beyond it are dropped. The cap
  /// is per thread (buffers are thread-local), which bounds every thread's
  /// memory the same way.
  uint64_t sampleLimit() const {
    return SampleLimit.load(std::memory_order_relaxed);
  }
  void setSampleLimit(uint64_t N) {
    SampleLimit.store(N, std::memory_order_relaxed);
  }

  /// Spans dropped by sampling since the last clear().
  uint64_t droppedCount() const {
    return Dropped.load(std::memory_order_relaxed);
  }

  /// Per-category opened/recorded counts summed across all threads. Opened
  /// totals are schedule-independent (see SpanCategoryCount); Recorded
  /// totals depend on how work spread over threads once sampling kicks in.
  std::map<std::string, SpanCategoryCount, std::less<>> categoryCounts() const {
    std::lock_guard<std::mutex> Lock(Mu);
    std::map<std::string, SpanCategoryCount, std::less<>> Out;
    for (const auto &B : Buffers)
      for (const auto &[Cat, C] : B->CategoryCounts) {
        auto &Sum = Out[Cat];
        Sum.Opened += C.Opened;
        Sum.Recorded += C.Recorded;
      }
    return Out;
  }

  /// Snapshot of every thread's completed spans (export order: by thread,
  /// then completion order).
  std::vector<SpanEvent> snapshot() const {
    std::lock_guard<std::mutex> Lock(Mu);
    std::vector<SpanEvent> Out;
    for (const auto &B : Buffers)
      Out.insert(Out.end(), B->Events.begin(), B->Events.end());
    return Out;
  }

  size_t spanCount() const {
    std::lock_guard<std::mutex> Lock(Mu);
    size_t N = 0;
    for (const auto &B : Buffers)
      N += B->Events.size();
    return N;
  }

  /// Appends a whole counter track (bulk, not per-sample: producers batch
  /// their samples and hand them over once, so the mutex is off any hot
  /// path). Tracks with no samples are dropped.
  void addCounterTrack(std::string Name, std::vector<CounterSample> Samples) {
    if (Samples.empty())
      return;
    std::lock_guard<std::mutex> Lock(Mu);
    Tracks.push_back(CounterTrack{std::move(Name), std::move(Samples)});
  }

  std::vector<CounterTrack> counterTracks() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Tracks;
  }

  /// Nanoseconds since the tracer was enabled — the timestamp domain shared
  /// by SpanEvent and CounterSample, for producers stamping counter samples.
  uint64_t elapsedNs() const { return nowNs(); }

  /// Drops all recorded spans, counter tracks and the drop counter; the
  /// enabled flag and registered thread buffers are left alone.
  void clear() {
    std::lock_guard<std::mutex> Lock(Mu);
    for (const auto &B : Buffers) {
      B->Events.clear();
      B->CategoryCounts.clear();
      B->Depth = 0;
    }
    Tracks.clear();
    Dropped.store(0, std::memory_order_relaxed);
  }

private:
  friend class Span;

  /// One thread's slice of the timeline. Owned by the tracer so the export
  /// outlives thread exit; the recording thread touches it lock-free.
  struct ThreadBuf {
    std::thread::id Owner;
    uint32_t Tid = 0;
    uint32_t Depth = 0;
    std::vector<SpanEvent> Events;
    /// Opened/recorded spans per category; Recorded drives the sampling cap.
    std::map<std::string, SpanCategoryCount, std::less<>> CategoryCounts;
  };

  /// Fetch-or-create the calling thread's buffer. A thread_local cache
  /// makes the steady-state lookup two loads; the lock is taken on the
  /// first span per (thread, tracer) pair and after cache eviction. The
  /// cache is keyed on a process-unique instance id, not the tracer's
  /// address: a new tracer reusing a destroyed one's address (stack-local
  /// tracers in tests) must not hit the stale buffer pointer.
  ThreadBuf &threadBuf() {
    thread_local uint64_t CachedInstance = 0;
    thread_local ThreadBuf *Cached = nullptr;
    if (CachedInstance == Instance && Cached)
      return *Cached;
    std::thread::id Me = std::this_thread::get_id();
    std::lock_guard<std::mutex> Lock(Mu);
    ThreadBuf *Found = nullptr;
    for (const auto &B : Buffers)
      if (B->Owner == Me)
        Found = B.get();
    if (!Found) {
      auto B = std::make_unique<ThreadBuf>();
      B->Owner = Me;
      B->Tid = static_cast<uint32_t>(Buffers.size());
      Buffers.push_back(std::move(B));
      Found = Buffers.back().get();
    }
    CachedInstance = Instance;
    Cached = Found;
    return *Found;
  }

  static uint64_t nextInstanceId() {
    static std::atomic<uint64_t> Next{0};
    return Next.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  uint64_t nowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Epoch)
            .count());
  }

  const uint64_t Instance = nextInstanceId();
  std::atomic<bool> Enabled{false};
  std::atomic<uint64_t> Dropped{0};
  std::atomic<uint64_t> SampleLimit{512};
  std::chrono::steady_clock::time_point Epoch{};
  mutable std::mutex Mu;
  std::vector<std::unique_ptr<ThreadBuf>> Buffers;
  std::vector<CounterTrack> Tracks;
};

/// RAII span. When the tracer is disabled at construction the clock is
/// never read and nothing allocates — one branch, two pointer stores. A
/// span whose category hit the sampling cap still tracks nesting depth but
/// records nothing.
class Span {
public:
  explicit Span(const char *Name, const char *Category = "pipeline",
                SpanTracer &T = SpanTracer::global()) {
    if (!T.enabled())
      return;
    Tracer = &T;
    Buf = &T.threadBuf();
    auto It = Buf->CategoryCounts.find(std::string_view(Category));
    if (It == Buf->CategoryCounts.end())
      It = Buf->CategoryCounts.emplace(Category, SpanCategoryCount{}).first;
    SpanCategoryCount &Seen = It->second;
    ++Seen.Opened;
    if (Seen.Recorded >= T.sampleLimit()) {
      Tracer->Dropped.fetch_add(1, std::memory_order_relaxed);
      Registry &Reg = Registry::global();
      if (Reg.enabled()) {
        // The drop path is per event, so it must not take the registry
        // mutex. Cache the resolved counter per thread and revalidate
        // against the registry generation: clear() frees the node this
        // points at, but also bumps the generation, so the stale pointer
        // is never dereferenced.
        thread_local Counter *DropCounter = nullptr;
        thread_local uint64_t DropGeneration = ~uint64_t{0};
        uint64_t Gen = Reg.generation();
        if (!DropCounter || DropGeneration != Gen) {
          DropCounter = &Reg.counter("obs.trace.spans_dropped");
          DropGeneration = Gen;
        }
        DropCounter->inc();
      }
      Sampled = false;
    } else {
      ++Seen.Recorded;
      Ev.Name = Name;
      Ev.Category = Category;
      Ev.Tid = Buf->Tid;
      Ev.Depth = Buf->Depth;
      Ev.StartNs = T.nowNs();
      CpuStartNs = threadCpuNowNs();
    }
    ++Buf->Depth;
  }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  ~Span() { end(); }

  /// Attaches a key/value annotation; a no-op when not recording.
  void arg(const char *Key, int64_t V) {
    if (!recording())
      return;
    SpanArg A;
    A.Key = Key;
    A.K = SpanArg::Kind::Int;
    A.I = V;
    Ev.Args.push_back(std::move(A));
  }
  void arg(const char *Key, uint64_t V) { arg(Key, static_cast<int64_t>(V)); }
  void arg(const char *Key, unsigned V) { arg(Key, static_cast<int64_t>(V)); }
  void arg(const char *Key, double V) {
    if (!recording())
      return;
    SpanArg A;
    A.Key = Key;
    A.K = SpanArg::Kind::Double;
    A.D = V;
    Ev.Args.push_back(std::move(A));
  }
  void arg(const char *Key, const std::string &V) {
    if (!recording())
      return;
    SpanArg A;
    A.Key = Key;
    A.K = SpanArg::Kind::Str;
    A.S = V;
    Ev.Args.push_back(std::move(A));
  }
  void arg(const char *Key, const char *V) { arg(Key, std::string(V)); }

  /// Closes the span early; later ends (and the destructor) are no-ops.
  void end() {
    if (!Tracer)
      return;
    if (Buf->Depth > 0)
      --Buf->Depth;
    if (Sampled) {
      Ev.DurNs = Tracer->nowNs() - Ev.StartNs;
      uint64_t CpuEnd = threadCpuNowNs();
      Ev.CpuDurNs = CpuEnd > CpuStartNs ? CpuEnd - CpuStartNs : 0;
      Buf->Events.push_back(std::move(Ev));
    }
    Tracer = nullptr;
  }

  /// The calling thread's CPU clock, or 0 where the platform lacks one.
  static uint64_t threadCpuNowNs() {
#ifdef CLOCK_THREAD_CPUTIME_ID
    timespec Ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &Ts) == 0)
      return static_cast<uint64_t>(Ts.tv_sec) * 1000000000ull +
             static_cast<uint64_t>(Ts.tv_nsec);
#endif
    return 0;
  }

private:
  bool recording() const { return Tracer && Sampled; }

  SpanTracer *Tracer = nullptr;
  SpanTracer::ThreadBuf *Buf = nullptr;
  bool Sampled = true;
  uint64_t CpuStartNs = 0;
  SpanEvent Ev;
};

// -- Export (implemented in obs/TraceSpans.cpp, links bpcr_obs) -------------

class JsonValue;

/// The tracer's timeline as a Chrome Trace Event Format document
/// ({"traceEvents": [...]}) loadable in chrome://tracing and Perfetto.
JsonValue spansJson(const SpanTracer &T, const std::string &Tool);

/// Writes the Chrome Trace JSON to \p Path. \returns false and sets
/// \p Error on I/O failure.
bool writeSpanTrace(const std::string &Path, const SpanTracer &T,
                    const std::string &Tool, std::string &Error);

/// Scans argv for `--trace-out FILE`, splices the pair out of argv, falls
/// back to $BPCR_TRACE_OUT, and enables the global tracer when a path was
/// found. \returns false and sets \p Error when the flag has no value.
bool extractTraceOutFlag(int &Argc, char **Argv, std::string &Path,
                         std::string &Error);

/// Writes the global tracer's timeline to \p Path (no-op when empty),
/// reporting to stdout/stderr. \returns a process exit code (0 ok, 1 I/O
/// failure).
int finishSpanTrace(const std::string &Path, const char *Tool);

} // namespace bpcr

#endif // BPCR_OBS_TRACESPANS_H
