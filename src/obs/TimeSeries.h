//===- obs/TimeSeries.h - Windowed trace telemetry --------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Time-series telemetry over the dynamic branch-event stream. End-of-run
/// aggregates (metrics, attribution) hide how branch behaviour evolves over
/// a trace — warmup vs steady state, phase changes, loop-exit bursts — which
/// is exactly where semi-static prediction wins or loses. The TimeSeries
/// recorder buckets events into fixed-width windows (power-of-two event
/// counts) and keeps global plus per-branch taken/misprediction counts per
/// window.
///
/// Memory is bounded: when the event stream outgrows the window budget,
/// adjacent windows are merged pairwise and the window width doubles
/// (merge-on-overflow). Because the window index is derived from the event's
/// position in the trace — not from arrival order — the final series is a
/// pure function of the recorded (index, branch, taken, mispredicted)
/// tuples. Any thread interleaving, and any `--jobs` count, produces the
/// same snapshot byte for byte.
///
/// Like the other obs recording halves (Metrics.h, Attribution.h), the
/// recorder is header-only so core/interp code can fill it without linking
/// bpcr_obs; segmentation and JSON serialization live in TimeSeries.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_OBS_TIMESERIES_H
#define BPCR_OBS_TIMESERIES_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace bpcr {

class JsonValue;

/// Per-window counts for one branch (original branch id; replicas fold back
/// onto the branch they were cloned from, mirroring attribution semantics).
struct TimeSeriesCell {
  uint64_t Events = 0;
  uint64_t Taken = 0;
  uint64_t Mispredictions = 0;
};

/// One fixed-width event window of the series.
struct TimeSeriesWindow {
  uint64_t Events = 0;
  uint64_t Taken = 0;
  uint64_t Mispredictions = 0;
  /// Wall-clock sample (ns since epoch) of the latest event observed in this
  /// window, 0 when no sample was captured. Only used to place Chrome Trace
  /// counter events; never part of deterministic output.
  uint64_t WallNs = 0;
  /// Indexed by original branch id; empty when the recorder was built with
  /// zero branches.
  std::vector<TimeSeriesCell> Branches;
};

/// A finished, plain-data snapshot of the series. Copyable; carried on
/// PipelineResult.
struct TimeSeriesData {
  /// Final window width in events (after any merge-on-overflow doublings).
  uint64_t WindowEvents = 0;
  uint32_t NumBranches = 0;
  uint64_t TotalEvents = 0;
  uint64_t TotalTaken = 0;
  uint64_t TotalMispredictions = 0;
  std::vector<TimeSeriesWindow> Windows;

  bool empty() const { return Windows.empty(); }

  /// Percentage helper that maps 0/0 to 0 instead of NaN so series rows and
  /// report leaves stay finite.
  static double percent(uint64_t Part, uint64_t Whole) {
    return Whole == 0 ? 0.0 : 100.0 * double(Part) / double(Whole);
  }
};

/// Tuning for the recorder.
struct TimeSeriesOptions {
  /// Initial window width in events. Must be a power of two.
  uint64_t WindowEvents = 1024;
  /// Window budget; reaching it merges adjacent windows and doubles the
  /// width. 1024 windows of 1024 events cover the paper's 1M-event traces
  /// without a single merge.
  uint32_t MaxWindows = 1024;
};

inline bool isPowerOfTwo(uint64_t N) { return N != 0 && (N & (N - 1)) == 0; }

/// Thread-safe windowed accumulator. Writers call record() concurrently;
/// the series is order-independent (see file comment), so concurrent use
/// cannot perturb the snapshot. A single mutex is deliberate: the recorder
/// runs on the measurement pass, not the search hot path, and the streaming
/// ingestion service this feeds will shard recorders per session anyway.
class TimeSeries {
public:
  explicit TimeSeries(const TimeSeriesOptions &Opts = TimeSeriesOptions(),
                      uint32_t NumBranches = 0)
      : NumBranches(NumBranches), MaxWindows(Opts.MaxWindows) {
    uint64_t W = isPowerOfTwo(Opts.WindowEvents) ? Opts.WindowEvents : 1024;
    Shift = 0;
    while ((uint64_t{1} << Shift) < W)
      ++Shift;
    if (MaxWindows == 0)
      MaxWindows = 1;
  }

  TimeSeries(const TimeSeries &) = delete;
  TimeSeries &operator=(const TimeSeries &) = delete;

  /// Records one branch event. \p EventIndex is the event's position in the
  /// trace (0-based); it alone decides the window, which is what makes the
  /// series independent of arrival order. Branch ids outside
  /// [0, NumBranches) contribute to the global counts only. \p WallNs, when
  /// non-zero, stamps the window with a wall-clock sample for trace-viewer
  /// counter tracks.
  void record(uint64_t EventIndex, int32_t BranchId, bool Taken,
              bool Mispredicted, uint64_t WallNs = 0) {
    std::lock_guard<std::mutex> Lock(Mu);
    uint64_t Idx = EventIndex >> Shift;
    while (Idx >= MaxWindows) {
      mergeAdjacentLocked();
      Idx = EventIndex >> Shift;
    }
    if (Idx >= Windows.size())
      Windows.resize(Idx + 1);
    TimeSeriesWindow &W = Windows[Idx];
    if (W.Branches.empty() && NumBranches > 0)
      W.Branches.resize(NumBranches);
    ++W.Events;
    ++TotalEvents;
    if (Taken) {
      ++W.Taken;
      ++TotalTaken;
    }
    if (Mispredicted) {
      ++W.Mispredictions;
      ++TotalMispredictions;
    }
    if (WallNs > W.WallNs)
      W.WallNs = WallNs;
    if (BranchId >= 0 && uint32_t(BranchId) < NumBranches) {
      TimeSeriesCell &C = W.Branches[uint32_t(BranchId)];
      ++C.Events;
      if (Taken)
        ++C.Taken;
      if (Mispredicted)
        ++C.Mispredictions;
    }
  }

  /// Copies the current state out as plain data.
  TimeSeriesData snapshot() const {
    std::lock_guard<std::mutex> Lock(Mu);
    TimeSeriesData D;
    D.WindowEvents = uint64_t{1} << Shift;
    D.NumBranches = NumBranches;
    D.TotalEvents = TotalEvents;
    D.TotalTaken = TotalTaken;
    D.TotalMispredictions = TotalMispredictions;
    D.Windows = Windows;
    return D;
  }

  /// Moves the state out, leaving the recorder empty (width is kept).
  TimeSeriesData take() {
    std::lock_guard<std::mutex> Lock(Mu);
    TimeSeriesData D;
    D.WindowEvents = uint64_t{1} << Shift;
    D.NumBranches = NumBranches;
    D.TotalEvents = TotalEvents;
    D.TotalTaken = TotalTaken;
    D.TotalMispredictions = TotalMispredictions;
    D.Windows = std::move(Windows);
    Windows.clear();
    TotalEvents = TotalTaken = TotalMispredictions = 0;
    return D;
  }

  uint64_t windowEvents() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return uint64_t{1} << Shift;
  }

private:
  /// Halves the window count by summing adjacent pairs and doubles the
  /// width. Addition is associative, so overflow handling preserves
  /// order-independence.
  void mergeAdjacentLocked() {
    std::vector<TimeSeriesWindow> Merged;
    Merged.resize((Windows.size() + 1) / 2);
    for (size_t I = 0; I < Windows.size(); ++I) {
      TimeSeriesWindow &Dst = Merged[I / 2];
      TimeSeriesWindow &Src = Windows[I];
      Dst.Events += Src.Events;
      Dst.Taken += Src.Taken;
      Dst.Mispredictions += Src.Mispredictions;
      if (Src.WallNs > Dst.WallNs)
        Dst.WallNs = Src.WallNs;
      if (!Src.Branches.empty()) {
        if (Dst.Branches.empty())
          Dst.Branches.resize(NumBranches);
        for (size_t B = 0; B < Src.Branches.size(); ++B) {
          Dst.Branches[B].Events += Src.Branches[B].Events;
          Dst.Branches[B].Taken += Src.Branches[B].Taken;
          Dst.Branches[B].Mispredictions += Src.Branches[B].Mispredictions;
        }
      }
    }
    Windows = std::move(Merged);
    ++Shift;
  }

  mutable std::mutex Mu;
  uint32_t NumBranches;
  uint32_t MaxWindows;
  unsigned Shift = 10;
  uint64_t TotalEvents = 0;
  uint64_t TotalTaken = 0;
  uint64_t TotalMispredictions = 0;
  std::vector<TimeSeriesWindow> Windows;
};

/// One detected phase: a maximal run of windows whose misprediction rate is
/// internally stable. Window range is inclusive.
struct PhaseSegment {
  uint32_t FirstWindow = 0;
  uint32_t LastWindow = 0;
  uint64_t StartEvent = 0;
  uint64_t Events = 0;
  uint64_t Taken = 0;
  uint64_t Mispredictions = 0;

  double missRatePercent() const {
    return TimeSeriesData::percent(Mispredictions, Events);
  }
  double takenPercent() const {
    return TimeSeriesData::percent(Taken, Events);
  }
};

/// Knobs for the change-point detector (documented in
/// docs/OBSERVABILITY.md; defaults tuned for the paper's workloads).
struct SegmentationOptions {
  /// A split is kept only if the two sides' misprediction rates differ by at
  /// least this many percentage points.
  double MinDeltaPercent = 2.0;
  /// Minimum windows per phase; suppresses single-window noise phases.
  uint32_t MinWindows = 2;
  /// Upper bound on reported phases.
  uint32_t MaxPhases = 16;
};

/// Knobs for the generic weighted-series change-point core. Same algorithm
/// as SegmentationOptions, but in the value units of the series instead of
/// percentage points — the cross-run trend engine (obs/Trend.h) reuses the
/// detector over per-run metric values, where "percent" has no meaning.
struct SeriesSegmentationOptions {
  /// A split is kept only if the two sides' weighted means differ by at
  /// least this much (in the series' own units).
  double MinDelta = 0.0;
  /// Minimum points per segment; suppresses single-point noise segments.
  uint32_t MinSegment = 2;
  /// Upper bound on produced segments (cuts + 1).
  uint32_t MaxSegments = 16;
};

/// The binary-segmentation change-point core: recursively splits
/// [0, Values.size()) at the boundary with the largest reduction in
/// weight-weighted squared error. Deterministic (ties resolve to the lowest
/// split index; left half recurses first). \p Weights must be the same
/// length as \p Values; pass all-ones for an unweighted series. \returns
/// the sorted interior cut indices (a cut at i starts a new segment at
/// element i); empty when no split clears the gates.
std::vector<size_t> segmentSeries(const std::vector<double> &Values,
                                  const std::vector<double> &Weights,
                                  const SeriesSegmentationOptions &Opts);

/// Change-point detection on the windowed misprediction rate: recursive
/// binary segmentation choosing the split that maximally reduces the
/// event-weighted squared error. Deterministic (ties resolve to the lowest
/// split index). Returns at least one phase for a non-empty series.
std::vector<PhaseSegment>
segmentPhases(const TimeSeriesData &TS,
              const SegmentationOptions &Opts = SegmentationOptions());

/// Warmup-boundary estimate: the event offset where the series first enters
/// the steady-state regime. Scans phases from the end while their rates stay
/// within max(1 percentage point, 25% relative) of the final phase's rate;
/// warmup ends where that run begins. 0 when the whole run is steady.
uint64_t estimateWarmupEvents(const TimeSeriesData &TS,
                              const std::vector<PhaseSegment> &Phases);

/// Serializes the series, its phase segmentation, and per-phase splits for
/// \p SplitBranches (attribution's top-K original branch ids) as the
/// report's `timeline` section. Scalar leaves and the `phases` object are
/// flattened and gated by `bpcr compare`; the `windows` array is carried for
/// plotting but not gated.
JsonValue timelineJson(const TimeSeriesData &TS,
                       const std::vector<int32_t> &SplitBranches,
                       const SegmentationOptions &Opts = SegmentationOptions());

} // namespace bpcr

#endif // BPCR_OBS_TIMESERIES_H
