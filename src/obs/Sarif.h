//===- obs/Sarif.h - Diagnostic renderers (JSON, SARIF) ---------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-readable renderers for sa::Diagnostic: a plain JSON array for
/// scripting, and a SARIF 2.1.0 log for CI code-scanning upload. They live
/// in obs (not sa) because sa sits below obs in the link order — obs links
/// core, core links sa — while Diagnostic.h itself is header-only and flows
/// freely. The SARIF mapping is documented in docs/STATIC_ANALYSIS.md:
/// fully-qualified rule ids become rule ids, IR locations become
/// logicalLocations (there are no physical files — modules are built or
/// loaded in memory, so the artifact URI names the workload or module
/// file).
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_OBS_SARIF_H
#define BPCR_OBS_SARIF_H

#include "obs/Json.h"
#include "sa/Diagnostic.h"

#include <string>
#include <vector>

namespace bpcr {

/// Rule metadata for the SARIF tool.driver.rules table: the pass id and its
/// one-line description (from Pass::description()).
struct SarifRuleInfo {
  std::string PassId;
  std::string Description;
};

/// Plain JSON rendering: an object with a "diagnostics" array (severity,
/// rule, location, message, notes) and per-severity counts.
JsonValue diagnosticsJson(const std::vector<sa::Diagnostic> &Diags);

/// SARIF 2.1.0 log with one run. \p ArtifactUri names what was linted
/// ("workload:compress" or a module file path); \p Passes supplies rule
/// descriptions, matched to each diagnostic by pass id.
JsonValue sarifLog(const std::vector<sa::Diagnostic> &Diags,
                   const std::string &ArtifactUri,
                   const std::vector<SarifRuleInfo> &Passes = {});

} // namespace bpcr

#endif // BPCR_OBS_SARIF_H
