//===- obs/Json.h - Minimal JSON document model -----------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small JSON value type with a writer and a strict parser, enough for
/// the machine-readable run reports (obs/Report.h) and their round-trip
/// tests. Objects preserve insertion order so emitted reports are stable
/// and diffable across runs. Integers are kept exact (int64) rather than
/// funneled through double, because event counters routinely exceed 2^53.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_OBS_JSON_H
#define BPCR_OBS_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bpcr {

/// One JSON value; arrays and objects own their children.
class JsonValue {
public:
  enum class Kind : uint8_t { Null, Bool, Int, Double, String, Array, Object };

  JsonValue() = default;

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool V) {
    JsonValue J;
    J.K = Kind::Bool;
    J.B = V;
    return J;
  }
  static JsonValue integer(int64_t V) {
    JsonValue J;
    J.K = Kind::Int;
    J.I = V;
    return J;
  }
  static JsonValue integer(uint64_t V) {
    return integer(static_cast<int64_t>(V));
  }
  static JsonValue number(double V) {
    JsonValue J;
    J.K = Kind::Double;
    J.D = V;
    return J;
  }
  static JsonValue str(std::string V) {
    JsonValue J;
    J.K = Kind::String;
    J.S = std::move(V);
    return J;
  }
  static JsonValue array() {
    JsonValue J;
    J.K = Kind::Array;
    return J;
  }
  static JsonValue object() {
    JsonValue J;
    J.K = Kind::Object;
    return J;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }

  bool asBool() const { return B; }
  int64_t asInt() const {
    return K == Kind::Double ? static_cast<int64_t>(D) : I;
  }
  /// Numeric value as double regardless of integer/double storage.
  double asDouble() const {
    return K == Kind::Int ? static_cast<double>(I) : D;
  }
  const std::string &asString() const { return S; }

  // -- Arrays ---------------------------------------------------------------
  void push(JsonValue V) { Arr.push_back(std::move(V)); }
  size_t size() const {
    return K == Kind::Object ? Obj.size() : Arr.size();
  }
  const JsonValue &at(size_t Idx) const { return Arr[Idx]; }
  const std::vector<JsonValue> &items() const { return Arr; }

  // -- Objects (insertion-ordered) ------------------------------------------
  /// Sets \p Key (replacing an existing entry) and returns the stored value.
  JsonValue &set(const std::string &Key, JsonValue V);
  /// \returns the member or nullptr when absent.
  const JsonValue *find(const std::string &Key) const;
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Obj;
  }

  /// Structural equality; Int and Double compare equal when their numeric
  /// values coincide (a parse of "2" matches integer(2) and number(2.0)).
  bool operator==(const JsonValue &O) const;
  bool operator!=(const JsonValue &O) const { return !(*this == O); }

  /// Serializes the value. \p Indent > 0 pretty-prints with that many
  /// spaces per level; 0 emits a compact single line.
  std::string dump(unsigned Indent = 2) const;

private:
  Kind K = Kind::Null;
  bool B = false;
  int64_t I = 0;
  double D = 0.0;
  std::string S;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;
};

/// Parses \p Text as one JSON document. On failure returns null and sets
/// \p Error to a message with the byte offset of the problem; trailing
/// non-whitespace after the document is an error.
JsonValue parseJson(const std::string &Text, std::string &Error);

/// \returns the dotted path ("metrics.gauges.foo", array indices as
/// numbers) of the first non-finite double in \p V, or the empty string
/// when every number is finite. The report writer refuses documents with
/// NaN/Inf members instead of silently emitting nulls.
std::string findNonFinitePath(const JsonValue &V);

} // namespace bpcr

#endif // BPCR_OBS_JSON_H
