//===- obs/Metrics.h - Counters, gauges, timers -----------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight registry of named counters, gauges, histograms and phase
/// timers that the pipeline layers report into. The registry is disabled by
/// default and every instrumentation site guards on enabled(), so the hot
/// paths pay one predictable branch per *run* (never per event) when
/// observability is off. Header-only so low-level libraries (interp, core)
/// can record metrics without a link dependency; the JSON report writer
/// lives in obs/Report.{h,cpp}.
///
/// Thread safety: the machine-search layer fans work out over a pool
/// (support/ThreadPool.h), so every metric update is lock-free — counters,
/// gauges and histogram fields are relaxed atomics. The registry's
/// fetch-or-create accessors take a mutex, but they run once per metric per
/// phase, never per event; returned references stay valid until clear().
/// Readers (report writers, tests) iterate the maps without a lock and must
/// be quiescent: no concurrent metric *creation* or clear(). That holds by
/// construction — reports are written after the pool has joined.
///
/// Naming convention: dot-separated lowercase paths, coarse-to-fine
/// (`interp.branch_events`, `pipeline.phase.machine_search`). The full list
/// is documented in docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_OBS_METRICS_H
#define BPCR_OBS_METRICS_H

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>

namespace bpcr {

/// Monotonically increasing event count. Updates are relaxed atomics:
/// totals are order-independent, which is what keeps parallel runs'
/// reports identical to serial ones.
struct Counter {
  std::atomic<uint64_t> Value{0};

  void inc() { Value.fetch_add(1, std::memory_order_relaxed); }
  void add(uint64_t N) { Value.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
};

/// Last-written measurement (a rate or level computed at the end of a run).
struct Gauge {
  std::atomic<double> Value{0.0};

  void set(double V) { Value.store(V, std::memory_order_relaxed); }
  double value() const { return Value.load(std::memory_order_relaxed); }
};

/// Count/sum/min/max summary of a sample stream, plus fixed log-spaced
/// bucket counts for quantile estimates. Timers record into one of these
/// with nanosecond samples. No raw samples are retained: memory per
/// histogram is constant regardless of how many values are recorded.
///
/// record() is lock-free (relaxed atomics; Sum/Min/Max via CAS loops).
/// The summary accessors read the fields independently, so they are exact
/// only once recording has quiesced — fine for report time, which is the
/// only place they are read.
struct Histogram {
  /// Bucket 0 holds samples < 1 (including negatives); bucket i >= 1 holds
  /// [2^(i-1), 2^i). 63 power-of-two buckets cover the full positive range
  /// of nanosecond timings and counter-sized values.
  static constexpr unsigned NumBuckets = 64;

  std::atomic<uint64_t> CountA{0};
  std::atomic<double> SumA{0.0};
  /// +/-infinity sentinels until the first sample; min()/max() report 0
  /// for an empty histogram like the pre-threading implementation did.
  std::atomic<double> MinA{std::numeric_limits<double>::infinity()};
  std::atomic<double> MaxA{-std::numeric_limits<double>::infinity()};
  std::array<std::atomic<uint64_t>, NumBuckets> Buckets{};

  static unsigned bucketFor(double V) {
    if (!(V >= 1.0))
      return 0;
    int Exp = std::min(static_cast<int>(std::log2(V)), 62);
    // Guard the float boundary: log2(2^k - eps) can round up to k.
    if (Exp > 0 && V < std::ldexp(1.0, Exp))
      --Exp;
    return static_cast<unsigned>(Exp) + 1;
  }

  void record(double V) {
    // A single NaN/Inf sample would poison Sum and every quantile; drop it
    // so empty- and garbage-input histograms both report clean zeros.
    if (!std::isfinite(V))
      return;
    double Cur = MinA.load(std::memory_order_relaxed);
    while (V < Cur &&
           !MinA.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
    Cur = MaxA.load(std::memory_order_relaxed);
    while (V > Cur &&
           !MaxA.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
    CountA.fetch_add(1, std::memory_order_relaxed);
    Cur = SumA.load(std::memory_order_relaxed);
    while (!SumA.compare_exchange_weak(Cur, Cur + V,
                                       std::memory_order_relaxed))
      ;
    Buckets[bucketFor(V)].fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t count() const { return CountA.load(std::memory_order_relaxed); }
  double sum() const { return SumA.load(std::memory_order_relaxed); }
  double min() const {
    return count() ? MinA.load(std::memory_order_relaxed) : 0.0;
  }
  double max() const {
    return count() ? MaxA.load(std::memory_order_relaxed) : 0.0;
  }

  double mean() const {
    uint64_t N = count();
    return N ? sum() / static_cast<double>(N) : 0.0;
  }

  /// Estimates the \p Q quantile (Q in [0,1]) from the log buckets by
  /// linear interpolation inside the covering bucket, clamped to the
  /// observed [Min, Max]. Accuracy is bounded by the bucket width (a
  /// factor of two), which is plenty for "is p99 10x the median" style
  /// questions; exact ranks would require retaining samples.
  double quantile(double Q) const {
    uint64_t N = count();
    if (N == 0)
      return 0.0;
    double Lo0 = min(), Hi0 = max();
    double Target = Q * static_cast<double>(N);
    if (Target <= 1.0)
      return Lo0;
    uint64_t Cum = 0;
    for (unsigned I = 0; I < NumBuckets; ++I) {
      uint64_t B = Buckets[I].load(std::memory_order_relaxed);
      if (B == 0)
        continue;
      double Lo = I == 0 ? Lo0 : std::ldexp(1.0, static_cast<int>(I) - 1);
      double Hi = I == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(I));
      double Before = static_cast<double>(Cum);
      Cum += B;
      if (static_cast<double>(Cum) >= Target) {
        double Frac = (Target - Before) / static_cast<double>(B);
        double Est = Lo + Frac * (Hi - Lo);
        return std::min(std::max(Est, Lo0), Hi0);
      }
    }
    return Hi0;
  }

  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
};

/// Holds every metric by name. Instruments fetch-or-create entries under a
/// mutex (per run, not per event — cache the returned reference in a loop);
/// the metric objects themselves update lock-free. Readers (the report
/// writer, `bpcr report`) iterate the maps and require quiescence: no
/// concurrent creation or clear(), which report-time use satisfies.
class Registry {
public:
  /// The process-wide registry all built-in instrumentation reports to.
  static Registry &global() {
    static Registry R;
    return R;
  }

  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }
  void setEnabled(bool On) { Enabled.store(On, std::memory_order_relaxed); }

  Counter &counter(const std::string &Name) {
    std::lock_guard<std::mutex> Lock(Mu);
    return Counters[Name];
  }
  Gauge &gauge(const std::string &Name) {
    std::lock_guard<std::mutex> Lock(Mu);
    return Gauges[Name];
  }
  Histogram &histogram(const std::string &Name) {
    std::lock_guard<std::mutex> Lock(Mu);
    return Histograms[Name];
  }
  /// Phase timers are histograms of nanoseconds, kept separate so reports
  /// can render them as a wall-time breakdown.
  Histogram &timer(const std::string &Name) {
    std::lock_guard<std::mutex> Lock(Mu);
    return Timers[Name];
  }

  const std::map<std::string, Counter> &counters() const { return Counters; }
  const std::map<std::string, Gauge> &gauges() const { return Gauges; }
  const std::map<std::string, Histogram> &histograms() const {
    return Histograms;
  }
  const std::map<std::string, Histogram> &timers() const { return Timers; }

  bool empty() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Counters.empty() && Gauges.empty() && Histograms.empty() &&
           Timers.empty();
  }

  /// Drops every metric; the enabled flag is left alone. Invalidates every
  /// reference previously handed out by the accessors — the generation
  /// counter below lets long-lived caches notice.
  void clear() {
    std::lock_guard<std::mutex> Lock(Mu);
    Counters.clear();
    Gauges.clear();
    Histograms.clear();
    Timers.clear();
    Generation.fetch_add(1, std::memory_order_relaxed);
  }

  /// Bumped by clear(). Hot sites that cache a metric reference (the span
  /// tracer's drop counter) revalidate against this instead of re-locking
  /// the registry on every update.
  uint64_t generation() const {
    return Generation.load(std::memory_order_relaxed);
  }

private:
  std::atomic<bool> Enabled{false};
  std::atomic<uint64_t> Generation{0};
  mutable std::mutex Mu;
  std::map<std::string, Counter> Counters;
  std::map<std::string, Gauge> Gauges;
  std::map<std::string, Histogram> Histograms;
  std::map<std::string, Histogram> Timers;
};

/// RAII phase timer: records elapsed nanoseconds into \p R's timer \p Name
/// on destruction (or at an explicit stop()). When the registry is disabled
/// at construction the clock is never read — the disabled path is one
/// branch and two pointer stores.
class ScopedTimer {
public:
  explicit ScopedTimer(const char *Name,
                       Registry &R = Registry::global())
      : Reg(R.enabled() ? &R : nullptr), Name(Name) {
    if (Reg)
      Start = std::chrono::steady_clock::now();
  }

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

  ~ScopedTimer() { stop(); }

  /// Ends the phase early; subsequent stops are no-ops.
  void stop() {
    if (!Reg)
      return;
    auto Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
    Reg->timer(Name).record(static_cast<double>(Ns));
    Reg = nullptr;
  }

private:
  Registry *Reg;
  const char *Name;
  std::chrono::steady_clock::time_point Start;
};

} // namespace bpcr

#endif // BPCR_OBS_METRICS_H
