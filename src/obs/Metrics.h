//===- obs/Metrics.h - Counters, gauges, timers -----------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight registry of named counters, gauges, histograms and phase
/// timers that the pipeline layers report into. The registry is disabled by
/// default and every instrumentation site guards on enabled(), so the hot
/// paths pay one predictable branch per *run* (never per event) when
/// observability is off. Header-only so low-level libraries (interp, core)
/// can record metrics without a link dependency; the JSON report writer
/// lives in obs/Report.{h,cpp}.
///
/// Naming convention: dot-separated lowercase paths, coarse-to-fine
/// (`interp.branch_events`, `pipeline.phase.machine_search`). The full list
/// is documented in docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_OBS_METRICS_H
#define BPCR_OBS_METRICS_H

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>

namespace bpcr {

/// Monotonically increasing event count.
struct Counter {
  uint64_t Value = 0;

  void inc() { ++Value; }
  void add(uint64_t N) { Value += N; }
};

/// Last-written measurement (a rate or level computed at the end of a run).
struct Gauge {
  double Value = 0.0;

  void set(double V) { Value = V; }
};

/// Count/sum/min/max summary of a sample stream, plus fixed log-spaced
/// bucket counts for quantile estimates. Timers record into one of these
/// with nanosecond samples. No raw samples are retained: memory per
/// histogram is constant regardless of how many values are recorded.
struct Histogram {
  /// Bucket 0 holds samples < 1 (including negatives); bucket i >= 1 holds
  /// [2^(i-1), 2^i). 63 power-of-two buckets cover the full positive range
  /// of nanosecond timings and counter-sized values.
  static constexpr unsigned NumBuckets = 64;

  uint64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
  std::array<uint64_t, NumBuckets> Buckets{};

  static unsigned bucketFor(double V) {
    if (!(V >= 1.0))
      return 0;
    int Exp = std::min(static_cast<int>(std::log2(V)), 62);
    // Guard the float boundary: log2(2^k - eps) can round up to k.
    if (Exp > 0 && V < std::ldexp(1.0, Exp))
      --Exp;
    return static_cast<unsigned>(Exp) + 1;
  }

  void record(double V) {
    // A single NaN/Inf sample would poison Sum and every quantile; drop it
    // so empty- and garbage-input histograms both report clean zeros.
    if (!std::isfinite(V))
      return;
    if (Count == 0 || V < Min)
      Min = V;
    if (Count == 0 || V > Max)
      Max = V;
    ++Count;
    Sum += V;
    ++Buckets[bucketFor(V)];
  }

  double mean() const {
    return Count ? Sum / static_cast<double>(Count) : 0.0;
  }

  /// Estimates the \p Q quantile (Q in [0,1]) from the log buckets by
  /// linear interpolation inside the covering bucket, clamped to the
  /// observed [Min, Max]. Accuracy is bounded by the bucket width (a
  /// factor of two), which is plenty for "is p99 10x the median" style
  /// questions; exact ranks would require retaining samples.
  double quantile(double Q) const {
    if (Count == 0)
      return 0.0;
    double Target = Q * static_cast<double>(Count);
    if (Target <= 1.0)
      return Min;
    uint64_t Cum = 0;
    for (unsigned I = 0; I < NumBuckets; ++I) {
      if (Buckets[I] == 0)
        continue;
      double Lo = I == 0 ? Min : std::ldexp(1.0, static_cast<int>(I) - 1);
      double Hi = I == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(I));
      double Before = static_cast<double>(Cum);
      Cum += Buckets[I];
      if (static_cast<double>(Cum) >= Target) {
        double Frac = (Target - Before) / static_cast<double>(Buckets[I]);
        double Est = Lo + Frac * (Hi - Lo);
        return std::min(std::max(Est, Min), Max);
      }
    }
    return Max;
  }

  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
};

/// Holds every metric by name. Instruments fetch-or-create entries; readers
/// (the report writer, `bpcr report`) iterate the maps. Not thread-safe —
/// the pipeline is single-threaded; revisit when a layer gains threads.
class Registry {
public:
  /// The process-wide registry all built-in instrumentation reports to.
  static Registry &global() {
    static Registry R;
    return R;
  }

  bool enabled() const { return Enabled; }
  void setEnabled(bool On) { Enabled = On; }

  Counter &counter(const std::string &Name) { return Counters[Name]; }
  Gauge &gauge(const std::string &Name) { return Gauges[Name]; }
  Histogram &histogram(const std::string &Name) { return Histograms[Name]; }
  /// Phase timers are histograms of nanoseconds, kept separate so reports
  /// can render them as a wall-time breakdown.
  Histogram &timer(const std::string &Name) { return Timers[Name]; }

  const std::map<std::string, Counter> &counters() const { return Counters; }
  const std::map<std::string, Gauge> &gauges() const { return Gauges; }
  const std::map<std::string, Histogram> &histograms() const {
    return Histograms;
  }
  const std::map<std::string, Histogram> &timers() const { return Timers; }

  bool empty() const {
    return Counters.empty() && Gauges.empty() && Histograms.empty() &&
           Timers.empty();
  }

  /// Drops every metric; the enabled flag is left alone.
  void clear() {
    Counters.clear();
    Gauges.clear();
    Histograms.clear();
    Timers.clear();
  }

private:
  bool Enabled = false;
  std::map<std::string, Counter> Counters;
  std::map<std::string, Gauge> Gauges;
  std::map<std::string, Histogram> Histograms;
  std::map<std::string, Histogram> Timers;
};

/// RAII phase timer: records elapsed nanoseconds into \p R's timer \p Name
/// on destruction (or at an explicit stop()). When the registry is disabled
/// at construction the clock is never read — the disabled path is one
/// branch and two pointer stores.
class ScopedTimer {
public:
  explicit ScopedTimer(const char *Name,
                       Registry &R = Registry::global())
      : Reg(R.enabled() ? &R : nullptr), Name(Name) {
    if (Reg)
      Start = std::chrono::steady_clock::now();
  }

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

  ~ScopedTimer() { stop(); }

  /// Ends the phase early; subsequent stops are no-ops.
  void stop() {
    if (!Reg)
      return;
    auto Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
    Reg->timer(Name).record(static_cast<double>(Ns));
    Reg = nullptr;
  }

private:
  Registry *Reg;
  const char *Name;
  std::chrono::steady_clock::time_point Start;
};

} // namespace bpcr

#endif // BPCR_OBS_METRICS_H
