//===- obs/Metrics.h - Counters, gauges, timers -----------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight registry of named counters, gauges, histograms and phase
/// timers that the pipeline layers report into. The registry is disabled by
/// default and every instrumentation site guards on enabled(), so the hot
/// paths pay one predictable branch per *run* (never per event) when
/// observability is off. Header-only so low-level libraries (interp, core)
/// can record metrics without a link dependency; the JSON report writer
/// lives in obs/Report.{h,cpp}.
///
/// Naming convention: dot-separated lowercase paths, coarse-to-fine
/// (`interp.branch_events`, `pipeline.phase.machine_search`). The full list
/// is documented in docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_OBS_METRICS_H
#define BPCR_OBS_METRICS_H

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace bpcr {

/// Monotonically increasing event count.
struct Counter {
  uint64_t Value = 0;

  void inc() { ++Value; }
  void add(uint64_t N) { Value += N; }
};

/// Last-written measurement (a rate or level computed at the end of a run).
struct Gauge {
  double Value = 0.0;

  void set(double V) { Value = V; }
};

/// Count/sum/min/max summary of a sample stream. Timers record into one of
/// these with nanosecond samples.
struct Histogram {
  uint64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;

  void record(double V) {
    if (Count == 0 || V < Min)
      Min = V;
    if (Count == 0 || V > Max)
      Max = V;
    ++Count;
    Sum += V;
  }

  double mean() const {
    return Count ? Sum / static_cast<double>(Count) : 0.0;
  }
};

/// Holds every metric by name. Instruments fetch-or-create entries; readers
/// (the report writer, `bpcr report`) iterate the maps. Not thread-safe —
/// the pipeline is single-threaded; revisit when a layer gains threads.
class Registry {
public:
  /// The process-wide registry all built-in instrumentation reports to.
  static Registry &global() {
    static Registry R;
    return R;
  }

  bool enabled() const { return Enabled; }
  void setEnabled(bool On) { Enabled = On; }

  Counter &counter(const std::string &Name) { return Counters[Name]; }
  Gauge &gauge(const std::string &Name) { return Gauges[Name]; }
  Histogram &histogram(const std::string &Name) { return Histograms[Name]; }
  /// Phase timers are histograms of nanoseconds, kept separate so reports
  /// can render them as a wall-time breakdown.
  Histogram &timer(const std::string &Name) { return Timers[Name]; }

  const std::map<std::string, Counter> &counters() const { return Counters; }
  const std::map<std::string, Gauge> &gauges() const { return Gauges; }
  const std::map<std::string, Histogram> &histograms() const {
    return Histograms;
  }
  const std::map<std::string, Histogram> &timers() const { return Timers; }

  bool empty() const {
    return Counters.empty() && Gauges.empty() && Histograms.empty() &&
           Timers.empty();
  }

  /// Drops every metric; the enabled flag is left alone.
  void clear() {
    Counters.clear();
    Gauges.clear();
    Histograms.clear();
    Timers.clear();
  }

private:
  bool Enabled = false;
  std::map<std::string, Counter> Counters;
  std::map<std::string, Gauge> Gauges;
  std::map<std::string, Histogram> Histograms;
  std::map<std::string, Histogram> Timers;
};

/// RAII phase timer: records elapsed nanoseconds into \p R's timer \p Name
/// on destruction (or at an explicit stop()). When the registry is disabled
/// at construction the clock is never read — the disabled path is one
/// branch and two pointer stores.
class ScopedTimer {
public:
  explicit ScopedTimer(const char *Name,
                       Registry &R = Registry::global())
      : Reg(R.enabled() ? &R : nullptr), Name(Name) {
    if (Reg)
      Start = std::chrono::steady_clock::now();
  }

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

  ~ScopedTimer() { stop(); }

  /// Ends the phase early; subsequent stops are no-ops.
  void stop() {
    if (!Reg)
      return;
    auto Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
    Reg->timer(Name).record(static_cast<double>(Ns));
    Reg = nullptr;
  }

private:
  Registry *Reg;
  const char *Name;
  std::chrono::steady_clock::time_point Start;
};

} // namespace bpcr

#endif // BPCR_OBS_METRICS_H
