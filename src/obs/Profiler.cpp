//===- obs/Profiler.cpp ---------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Profiler.h"

#include "obs/Json.h"
#include "obs/Metrics.h"
#include "support/TablePrinter.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <numeric>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

using namespace bpcr;

// -- RSS sampling ------------------------------------------------------------

namespace {

/// Peak resident set size in bytes via getrusage. ru_maxrss is kilobytes on
/// Linux, bytes on macOS. \returns 0 where unsupported.
uint64_t peakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage Ru;
  if (getrusage(RUSAGE_SELF, &Ru) != 0)
    return 0;
#if defined(__APPLE__)
  return static_cast<uint64_t>(Ru.ru_maxrss);
#else
  return static_cast<uint64_t>(Ru.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

} // namespace

// -- Span aggregation --------------------------------------------------------

namespace {

/// Per-event derived data from the nesting reconstruction.
struct EventDerived {
  int64_t Parent = -1; ///< index into the sorted event order, -1 = root
  uint64_t SelfWallNs = 0;
  uint64_t SelfCpuNs = 0;
};

/// Reconstructs parent links and self times from the flat event list.
/// Events are properly nested per thread (RAII spans), so a preorder sweep
/// with an ancestor stack recovers the tree; spans dropped by sampling can
/// leave depth gaps, in which case children attach to the nearest
/// *recorded* ancestor whose interval contains them.
///
/// \returns derived data parallel to \p Order, where \p Order is the
/// preorder permutation of \p Events (sorted by Tid, StartNs, Depth).
std::vector<EventDerived> deriveTree(const std::vector<SpanEvent> &Events,
                                     std::vector<size_t> &Order) {
  Order.resize(Events.size());
  std::iota(Order.begin(), Order.end(), size_t{0});
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    const SpanEvent &EA = Events[A], &EB = Events[B];
    if (EA.Tid != EB.Tid)
      return EA.Tid < EB.Tid;
    if (EA.StartNs != EB.StartNs)
      return EA.StartNs < EB.StartNs;
    return EA.Depth < EB.Depth;
  });

  std::vector<EventDerived> Out(Events.size());
  std::vector<uint64_t> ChildWall(Events.size(), 0);
  std::vector<uint64_t> ChildCpu(Events.size(), 0);
  std::vector<size_t> Stack; // indices into Order's positions
  uint32_t StackTid = 0;

  for (size_t Pos = 0; Pos < Order.size(); ++Pos) {
    const SpanEvent &E = Events[Order[Pos]];
    if (Stack.empty() || StackTid != E.Tid) {
      Stack.clear();
      StackTid = E.Tid;
    }
    // Pop ancestors that ended before this span starts or sit at the same
    // or deeper nesting level (siblings, or closed subtrees).
    while (!Stack.empty()) {
      const SpanEvent &Top = Events[Order[Stack.back()]];
      bool Contains = Top.Depth < E.Depth && Top.StartNs <= E.StartNs &&
                      Top.StartNs + Top.DurNs >= E.StartNs + E.DurNs;
      if (Contains)
        break;
      Stack.pop_back();
    }
    if (!Stack.empty()) {
      size_t ParentPos = Stack.back();
      Out[Pos].Parent = static_cast<int64_t>(ParentPos);
      ChildWall[ParentPos] += E.DurNs;
      ChildCpu[ParentPos] += E.CpuDurNs;
    }
    Stack.push_back(Pos);
  }

  for (size_t Pos = 0; Pos < Order.size(); ++Pos) {
    const SpanEvent &E = Events[Order[Pos]];
    Out[Pos].SelfWallNs = E.DurNs >= ChildWall[Pos] ? E.DurNs - ChildWall[Pos]
                                                    : 0;
    Out[Pos].SelfCpuNs =
        E.CpuDurNs >= ChildCpu[Pos] ? E.CpuDurNs - ChildCpu[Pos] : 0;
  }
  return Out;
}

/// Exact nearest-rank quantile over \p Sorted (ascending). Empty input
/// yields 0.
uint64_t nearestRank(const std::vector<uint64_t> &Sorted, double Q) {
  if (Sorted.empty())
    return 0;
  double Rank = Q * static_cast<double>(Sorted.size());
  size_t Idx = Rank <= 1.0 ? 0 : static_cast<size_t>(Rank + 0.9999999) - 1;
  if (Idx >= Sorted.size())
    Idx = Sorted.size() - 1;
  return Sorted[Idx];
}

} // namespace

ProfileData Profiler::collect(const SpanTracer &T) const {
  ProfileData P;
  P.WallTotalNs = T.enabled() ? T.elapsedNs() : 0;
  P.SpansDropped = T.droppedCount();

  std::vector<SpanEvent> Events = T.snapshot();
  std::vector<size_t> Order;
  std::vector<EventDerived> Derived = deriveTree(Events, Order);

  struct Accum {
    uint64_t Count = 0;
    uint64_t TotalWallNs = 0;
    uint64_t SelfWallNs = 0;
    uint64_t TotalCpuNs = 0;
    uint64_t SelfCpuNs = 0;
    std::vector<uint64_t> WallNs;
  };
  std::map<std::string, Accum> ByCategory;
  std::map<std::pair<std::string, std::string>, Accum> BySite;

  for (size_t Pos = 0; Pos < Order.size(); ++Pos) {
    const SpanEvent &E = Events[Order[Pos]];
    const EventDerived &D = Derived[Pos];
    for (Accum *A : {&ByCategory[E.Category],
                     &BySite[{std::string(E.Category), std::string(E.Name)}]}) {
      ++A->Count;
      A->TotalWallNs += E.DurNs;
      A->SelfWallNs += D.SelfWallNs;
      A->TotalCpuNs += E.CpuDurNs;
      A->SelfCpuNs += D.SelfCpuNs;
      A->WallNs.push_back(E.DurNs);
    }
  }

  auto Counts = T.categoryCounts();
  // A category can appear in the counts with nothing recorded (everything
  // dropped); make sure it still shows up in the profile.
  for (const auto &[Cat, C] : Counts)
    (void)ByCategory[Cat];

  for (auto &[Cat, A] : ByCategory) {
    ProfileCategoryStats S;
    S.Category = Cat;
    auto It = Counts.find(Cat);
    S.Opened = It != Counts.end() ? It->second.Opened : A.Count;
    S.Recorded = It != Counts.end() ? It->second.Recorded : A.Count;
    S.Dropped = S.Opened >= S.Recorded ? S.Opened - S.Recorded : 0;
    S.SampleCapped = S.Dropped > 0;
    S.SampleScale =
        S.Recorded > 0
            ? static_cast<double>(S.Opened) / static_cast<double>(S.Recorded)
            : 0.0;
    S.TotalWallNs = A.TotalWallNs;
    S.SelfWallNs = A.SelfWallNs;
    S.TotalCpuNs = A.TotalCpuNs;
    S.SelfCpuNs = A.SelfCpuNs;
    std::sort(A.WallNs.begin(), A.WallNs.end());
    S.WallP50Ns = nearestRank(A.WallNs, 0.50);
    S.WallP95Ns = nearestRank(A.WallNs, 0.95);
    P.Categories.push_back(std::move(S));
  }

  for (auto &[Key, A] : BySite) {
    ProfileSiteStats S;
    S.Category = Key.first;
    S.Name = Key.second;
    S.Count = A.Count;
    S.TotalWallNs = A.TotalWallNs;
    S.SelfWallNs = A.SelfWallNs;
    S.TotalCpuNs = A.TotalCpuNs;
    S.SelfCpuNs = A.SelfCpuNs;
    std::sort(A.WallNs.begin(), A.WallNs.end());
    S.WallP50Ns = nearestRank(A.WallNs, 0.50);
    S.WallP95Ns = nearestRank(A.WallNs, 0.95);
    P.Sites.push_back(std::move(S));
  }

  {
    std::lock_guard<std::mutex> Lock(Mu);
    P.RssSamples = Samples;
  }
  P.PeakRssBytes = peakRssBytes();

  for (AllocTag Tag :
       {AllocTag::TraceBuffer, AllocTag::Ladder, AllocTag::PatternTable}) {
    ProfileAllocStats A;
    A.Tag = allocTagName(Tag);
    A.Stats = AllocTracker::global().stats(Tag);
    P.Allocs.push_back(std::move(A));
  }
  return P;
}

// -- Renderers ---------------------------------------------------------------

namespace {

/// The registry's pool.* metrics as one JSON object (empty when none).
JsonValue poolMetricsJson(const Registry &Reg) {
  JsonValue Pool = JsonValue::object();
  for (const auto &[Name, G] : Reg.gauges())
    if (Name.rfind("pool.", 0) == 0)
      Pool.set(Name, JsonValue::number(G.value()));
  for (const auto &[Name, C] : Reg.counters())
    if (Name.rfind("pool.", 0) == 0)
      Pool.set(Name, JsonValue::integer(C.value()));
  for (const auto &[Name, H] : Reg.histograms())
    if (Name.rfind("pool.", 0) == 0) {
      JsonValue J = JsonValue::object();
      J.set("count", JsonValue::integer(H.count()));
      J.set("sum", JsonValue::number(H.sum()));
      J.set("mean", JsonValue::number(H.mean()));
      J.set("p50", JsonValue::number(H.p50()));
      J.set("p95", JsonValue::number(H.p95()));
      J.set("max", JsonValue::number(H.max()));
      Pool.set(Name, std::move(J));
    }
  return Pool;
}

} // namespace

JsonValue bpcr::profileJson(const ProfileData &P, const Registry *Reg) {
  JsonValue Doc = JsonValue::object();
  Doc.set("wall_total_ns", JsonValue::integer(P.WallTotalNs));
  Doc.set("spans_dropped", JsonValue::integer(P.SpansDropped));

  JsonValue Cats = JsonValue::object();
  for (const ProfileCategoryStats &S : P.Categories) {
    JsonValue C = JsonValue::object();
    C.set("opened", JsonValue::integer(S.Opened));
    C.set("recorded", JsonValue::integer(S.Recorded));
    C.set("dropped", JsonValue::integer(S.Dropped));
    C.set("sample_capped", JsonValue::boolean(S.SampleCapped));
    C.set("sample_scale", JsonValue::number(S.SampleScale));
    C.set("total_wall_ns", JsonValue::integer(S.TotalWallNs));
    C.set("self_wall_ns", JsonValue::integer(S.SelfWallNs));
    C.set("total_cpu_ns", JsonValue::integer(S.TotalCpuNs));
    C.set("self_cpu_ns", JsonValue::integer(S.SelfCpuNs));
    C.set("wall_p50_ns", JsonValue::integer(S.WallP50Ns));
    C.set("wall_p95_ns", JsonValue::integer(S.WallP95Ns));
    if (S.SampleCapped) {
      // First-order estimate of the unsampled truth: recorded self time
      // scaled by opened/recorded. Kept separate so nobody mistakes the
      // raw number for complete coverage (the dropped spans' durations
      // were never measured).
      C.set("est_self_wall_ns",
            JsonValue::integer(static_cast<uint64_t>(
                static_cast<double>(S.SelfWallNs) * S.SampleScale)));
    }
    Cats.set(S.Category, std::move(C));
  }
  Doc.set("categories", std::move(Cats));

  JsonValue Sites = JsonValue::object();
  for (const ProfileSiteStats &S : P.Sites) {
    JsonValue J = JsonValue::object();
    J.set("count", JsonValue::integer(S.Count));
    J.set("total_wall_ns", JsonValue::integer(S.TotalWallNs));
    J.set("self_wall_ns", JsonValue::integer(S.SelfWallNs));
    J.set("total_cpu_ns", JsonValue::integer(S.TotalCpuNs));
    J.set("self_cpu_ns", JsonValue::integer(S.SelfCpuNs));
    J.set("wall_p50_ns", JsonValue::integer(S.WallP50Ns));
    J.set("wall_p95_ns", JsonValue::integer(S.WallP95Ns));
    Sites.set(S.Category + "/" + S.Name, std::move(J));
  }
  Doc.set("sites", std::move(Sites));

  JsonValue Mem = JsonValue::object();
  Mem.set("peak_rss_bytes", JsonValue::integer(P.PeakRssBytes));
  JsonValue Rss = JsonValue::array();
  for (const RssSample &S : P.RssSamples) {
    JsonValue J = JsonValue::object();
    J.set("label", JsonValue::str(S.Label));
    J.set("ns", JsonValue::integer(S.Ns));
    J.set("rss_bytes", JsonValue::integer(S.RssBytes));
    Rss.push(std::move(J));
  }
  Mem.set("rss_samples", std::move(Rss));
  JsonValue Allocs = JsonValue::object();
  for (const ProfileAllocStats &A : P.Allocs) {
    JsonValue J = JsonValue::object();
    J.set("allocs", JsonValue::integer(A.Stats.Allocs));
    J.set("frees", JsonValue::integer(A.Stats.Frees));
    J.set("bytes_allocated", JsonValue::integer(A.Stats.BytesAllocated));
    J.set("bytes_freed", JsonValue::integer(A.Stats.BytesFreed));
    J.set("peak_live_bytes", JsonValue::integer(A.Stats.PeakLiveBytes));
    Allocs.set(A.Tag, std::move(J));
  }
  Mem.set("allocs", std::move(Allocs));
  Doc.set("memory", std::move(Mem));

  if (Reg && Reg->enabled())
    Doc.set("pool", poolMetricsJson(*Reg));
  return Doc;
}

std::string bpcr::profileTable(const ProfileData &P, const Registry *Reg) {
  std::string Out;
  char Buf[128];

  auto Ms = [](uint64_t Ns) { return static_cast<double>(Ns) / 1e6; };

  TablePrinter Cats("Span categories (self vs total)");
  Cats.setHeader({"category", "opened", "recorded", "self ms", "total ms",
                  "self cpu ms", "p50 ms", "p95 ms", "sampled"});
  for (const ProfileCategoryStats &S : P.Categories) {
    std::vector<std::string> Row{S.Category, std::to_string(S.Opened),
                                 std::to_string(S.Recorded)};
    std::snprintf(Buf, sizeof(Buf), "%.3f", Ms(S.SelfWallNs));
    Row.push_back(Buf);
    std::snprintf(Buf, sizeof(Buf), "%.3f", Ms(S.TotalWallNs));
    Row.push_back(Buf);
    std::snprintf(Buf, sizeof(Buf), "%.3f", Ms(S.SelfCpuNs));
    Row.push_back(Buf);
    std::snprintf(Buf, sizeof(Buf), "%.3f", Ms(S.WallP50Ns));
    Row.push_back(Buf);
    std::snprintf(Buf, sizeof(Buf), "%.3f", Ms(S.WallP95Ns));
    Row.push_back(Buf);
    if (S.SampleCapped)
      std::snprintf(Buf, sizeof(Buf), "capped (~%.1fx)", S.SampleScale);
    else
      std::snprintf(Buf, sizeof(Buf), "full");
    Row.push_back(Buf);
    Cats.addRow(std::move(Row));
  }
  Out += Cats.render();
  Out += "\n";

  TablePrinter Sites("Hottest sites by self time");
  Sites.setHeader({"site", "count", "self ms", "total ms", "p95 ms"});
  std::vector<const ProfileSiteStats *> Sorted;
  for (const ProfileSiteStats &S : P.Sites)
    Sorted.push_back(&S);
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const ProfileSiteStats *A, const ProfileSiteStats *B) {
                     return A->SelfWallNs > B->SelfWallNs;
                   });
  size_t Shown = 0;
  for (const ProfileSiteStats *S : Sorted) {
    if (++Shown > 20)
      break;
    std::vector<std::string> Row{S->Category + "/" + S->Name,
                                 std::to_string(S->Count)};
    std::snprintf(Buf, sizeof(Buf), "%.3f", Ms(S->SelfWallNs));
    Row.push_back(Buf);
    std::snprintf(Buf, sizeof(Buf), "%.3f", Ms(S->TotalWallNs));
    Row.push_back(Buf);
    std::snprintf(Buf, sizeof(Buf), "%.3f", Ms(S->WallP95Ns));
    Row.push_back(Buf);
    Sites.addRow(std::move(Row));
  }
  Out += Sites.render();
  Out += "\n";

  std::snprintf(Buf, sizeof(Buf),
                "Wall total: %.3f ms; spans dropped by sampling: %llu\n",
                Ms(P.WallTotalNs),
                static_cast<unsigned long long>(P.SpansDropped));
  Out += Buf;
  if (P.PeakRssBytes) {
    std::snprintf(Buf, sizeof(Buf), "Peak RSS: %.1f MiB\n",
                  static_cast<double>(P.PeakRssBytes) / (1024.0 * 1024.0));
    Out += Buf;
  }

  bool AnyAlloc = false;
  for (const ProfileAllocStats &A : P.Allocs)
    AnyAlloc |= A.Stats.Allocs > 0;
  if (AnyAlloc) {
    TablePrinter Allocs("Tracked allocations");
    Allocs.setHeader({"pool", "allocs", "frees", "MiB alloc", "MiB peak"});
    for (const ProfileAllocStats &A : P.Allocs) {
      std::vector<std::string> Row{A.Tag, std::to_string(A.Stats.Allocs),
                                   std::to_string(A.Stats.Frees)};
      std::snprintf(Buf, sizeof(Buf), "%.2f",
                    static_cast<double>(A.Stats.BytesAllocated) /
                        (1024.0 * 1024.0));
      Row.push_back(Buf);
      std::snprintf(Buf, sizeof(Buf), "%.2f",
                    static_cast<double>(A.Stats.PeakLiveBytes) /
                        (1024.0 * 1024.0));
      Row.push_back(Buf);
      Allocs.addRow(std::move(Row));
    }
    Out += "\n";
    Out += Allocs.render();
  }

  if (Reg && Reg->enabled()) {
    double Threads = 0, Util = 0, Hwm = 0;
    for (const auto &[Name, G] : Reg->gauges()) {
      if (Name == "pool.threads")
        Threads = G.value();
      else if (Name == "pool.utilization_percent")
        Util = G.value();
      else if (Name == "pool.queue_depth_hwm")
        Hwm = G.value();
    }
    if (Threads > 0) {
      std::snprintf(Buf, sizeof(Buf),
                    "\nThread pool: %.0f workers, %.1f%% busy, queue "
                    "high-water %.0f\n",
                    Threads, Util, Hwm);
      Out += Buf;
    }
  }
  return Out;
}

std::string bpcr::collapsedStacks(const SpanTracer &T) {
  std::vector<SpanEvent> Events = T.snapshot();
  std::vector<size_t> Order;
  std::vector<EventDerived> Derived = deriveTree(Events, Order);

  // Build each event's frame path from its parent chain; the root frame
  // is the tool itself so every stack shares one base.
  std::vector<std::string> Paths(Order.size());
  std::map<std::string, uint64_t> Stacks;
  for (size_t Pos = 0; Pos < Order.size(); ++Pos) {
    const SpanEvent &E = Events[Order[Pos]];
    int64_t Parent = Derived[Pos].Parent;
    Paths[Pos] = Parent < 0
                     ? std::string("bpcr;") + E.Name
                     : Paths[static_cast<size_t>(Parent)] + ";" + E.Name;
    Stacks[Paths[Pos]] += Derived[Pos].SelfWallNs / 1000; // integer us
  }

  std::string Out;
  for (const auto &[Path, SelfUs] : Stacks) {
    Out += Path;
    Out += ' ';
    Out += std::to_string(SelfUs);
    Out += '\n';
  }
  return Out;
}

bool bpcr::writeProfileText(const std::string &Path, const std::string &Text,
                            const char *What, std::string &Error) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    // Name the reason (ENOENT from a missing parent directory is the
    // common case) so the caller's message is actionable.
    Error = std::string("cannot open ") + What + " file '" + Path +
            "' for writing: " + std::strerror(errno);
    return false;
  }
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  bool Ok = Written == Text.size();
  Ok &= std::fclose(F) == 0;
  if (!Ok)
    Error = std::string("short write to ") + What + " file '" + Path + "'";
  return Ok;
}
