//===- obs/Ledger.h - Append-only cross-run perf ledger ---------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An append-only, versioned history of run reports: one JSONL line per
/// run, carrying the flattened metric leaves of a report (obs/Compare.h
/// naming) plus run metadata (tool, command, workload, seed, events, jobs,
/// git SHA, host, timestamp). The bench runners and CI append to it on
/// every run; `bpcr trend` and `bpcr compare --ledger` read it back to turn
/// single-shot baseline diffs into longitudinal, noise-aware regression
/// gates (obs/Trend.h).
///
/// Determinism contract: every field of a record except the trailing
/// volatile ones — `ts_ns`, `host`, `git_sha` and the `perf` object of
/// wall-clock metrics — is a pure function of (workload, seed, events), so
/// stripping those makes records byte-comparable across `--jobs` values,
/// mirroring the report determinism gates. The deterministic/wall-clock
/// split uses the same patterns as the built-in compare skip rules.
///
/// Schema-migration shims: reports with schema_version 2 or 3 are accepted
/// (their newer sections are simply absent); flattened metrics whose
/// counting semantics changed without a schema bump (the ladder-search
/// counters, pre-v3) are dropped from old records so trends never compare
/// incompatible units. readLedger applies the same shims defensively, so
/// hand-written or historical records are normalized on the way in.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_OBS_LEDGER_H
#define BPCR_OBS_LEDGER_H

#include "obs/Json.h"

#include <string>
#include <vector>

namespace bpcr {

/// Bump when the record layout changes incompatibly. readLedger accepts
/// every version up to the current one and migrates old layouts forward.
constexpr int LedgerRecordVersion = 1;

/// Oldest report schema a record may carry. v1 reports predate the
/// "branches" section and the deterministic-counter semantics the trend
/// gates rely on; v2/v3 records ride through the migration shims.
constexpr int MinLedgerSchemaVersion = 2;

/// Run metadata stamped on every record. GitSha/Host/TimestampNs are the
/// volatile fields the determinism contract excludes.
struct LedgerMeta {
  std::string Tool;
  std::string Command;
  std::string Workload;
  uint64_t Seed = 0;
  uint64_t Events = 0;
  unsigned Jobs = 0;
  std::string GitSha;
  std::string Host;
  uint64_t TimestampNs = 0;
};

/// One ledger line: a flattened report split into the deterministic metric
/// set and the wall-clock ("perf") set, plus run metadata.
struct LedgerRecord {
  int LedgerVersion = LedgerRecordVersion;
  /// schema_version of the source report (MinLedgerSchemaVersion..current).
  int SchemaVersion = 0;
  LedgerMeta Meta;
  /// Deterministic flattened metrics, in flattenReportMetrics order.
  std::vector<std::pair<std::string, double>> Metrics;
  /// Wall-clock/schedule-dependent metrics (timings, rates, RSS, pool).
  std::vector<std::pair<std::string, double>> Perf;
  /// Metrics dropped by the schema-migration shims (old records only).
  unsigned MigrationDropped = 0;
};

/// True when the flattened metric name is wall-clock or schedule dependent
/// (the built-in compare skip patterns): stored under "perf" and excluded
/// from the byte-identity contract.
bool isWallClockMetric(const std::string &Name);

/// Fills GitSha (from $BPCR_GIT_SHA, CI exports $GITHUB_SHA there), Host
/// (gethostname) and TimestampNs (system clock) — the volatile triple.
/// Tool/command/workload/seed/events/jobs stay for the caller.
LedgerMeta currentLedgerMeta();

/// Builds a record from a run report: validates schema_version, flattens
/// the metric leaves, partitions deterministic vs wall-clock and applies
/// the migration shims. \returns false and sets \p Error when the report
/// is not a supported bpcr run report.
bool makeLedgerRecord(const JsonValue &Report, const LedgerMeta &Meta,
                      LedgerRecord &Out, std::string &Error);

/// The record as one compact JSONL line (no trailing newline). Field order
/// is fixed with the volatile fields (`ts_ns`, `host`, `git_sha`) adjacent
/// and the `perf` object last, so determinism tests can strip them with a
/// line-level filter.
std::string ledgerRecordLine(const LedgerRecord &R);

/// Appends one record to \p Path (created when missing). \returns false
/// and sets \p Error on I/O failure.
bool appendLedgerRecord(const std::string &Path, const LedgerRecord &R,
                        std::string &Error);

/// Convenience for the run producers: build the record from \p Report +
/// \p Meta and append it. Reports the failure reason via \p Error.
bool appendReportToLedger(const std::string &Path, const JsonValue &Report,
                          const LedgerMeta &Meta, std::string &Error);

/// Reads every record of a JSONL ledger, oldest first. Malformed lines and
/// records with unsupported versions are skipped with a note in
/// \p Warnings — an append-only history must tolerate a bad line without
/// invalidating the rest. \returns false and sets \p Error only when the
/// file itself is unreadable.
bool readLedger(const std::string &Path, std::vector<LedgerRecord> &Out,
                std::vector<std::string> &Warnings, std::string &Error);

} // namespace bpcr

#endif // BPCR_OBS_LEDGER_H
