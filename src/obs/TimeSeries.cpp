//===- obs/TimeSeries.cpp - Phase segmentation and serialization ----------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis half of the timeline layer: change-point detection on the
/// windowed misprediction rate, the warmup-boundary estimate, and the JSON
/// form consumed by the v3 report and `bpcr timeline --format json`.
///
//===----------------------------------------------------------------------===//

#include "obs/TimeSeries.h"

#include "obs/Json.h"

#include <algorithm>
#include <cmath>

namespace bpcr {

namespace {

/// Weighted value statistics over a half-open range, backed by prefix sums
/// so segment costs are O(1). For the timeline this is the event-weighted
/// miss rate; for cross-run trends (obs/Trend.h) it is the per-run metric
/// value with unit weights.
struct PrefixStats {
  // Index I holds sums over elements [0, I).
  std::vector<double> WeightPfx;
  std::vector<double> SumPfx;     // weight * value
  std::vector<double> SumSqPfx;   // weight * value^2

  PrefixStats(const std::vector<double> &Values,
              const std::vector<double> &Weights) {
    size_t N = Values.size();
    WeightPfx.assign(N + 1, 0.0);
    SumPfx.assign(N + 1, 0.0);
    SumSqPfx.assign(N + 1, 0.0);
    for (size_t I = 0; I < N; ++I) {
      double Weight = Weights[I];
      double Value = Values[I];
      WeightPfx[I + 1] = WeightPfx[I] + Weight;
      SumPfx[I + 1] = SumPfx[I] + Weight * Value;
      SumSqPfx[I + 1] = SumSqPfx[I] + Weight * Value * Value;
    }
  }

  double weight(size_t Lo, size_t Hi) const {
    return WeightPfx[Hi] - WeightPfx[Lo];
  }

  double mean(size_t Lo, size_t Hi) const {
    double W = weight(Lo, Hi);
    return W == 0.0 ? 0.0 : (SumPfx[Hi] - SumPfx[Lo]) / W;
  }

  /// Weighted sum of squared deviations from the range mean.
  double cost(size_t Lo, size_t Hi) const {
    double W = weight(Lo, Hi);
    if (W == 0.0)
      return 0.0;
    double Sum = SumPfx[Hi] - SumPfx[Lo];
    double SumSq = SumSqPfx[Hi] - SumSqPfx[Lo];
    double C = SumSq - Sum * Sum / W;
    return C < 0.0 ? 0.0 : C; // clamp FP cancellation noise
  }
};

/// Recursively splits [Lo, Hi) at the boundary with the largest cost
/// reduction, keeping a split only when both sides meet the minimum size
/// and their weighted means differ by MinDelta. Appends boundaries to
/// \p Cuts.
void splitRange(const PrefixStats &P, size_t Lo, size_t Hi,
                const SeriesSegmentationOptions &Opts, size_t &SegmentsLeft,
                std::vector<size_t> &Cuts) {
  if (SegmentsLeft <= 1 || Hi - Lo < 2 * size_t(Opts.MinSegment))
    return;
  double Whole = P.cost(Lo, Hi);
  double BestGain = 0.0;
  size_t BestCut = 0;
  for (size_t Cut = Lo + Opts.MinSegment; Cut + Opts.MinSegment <= Hi;
       ++Cut) {
    double Gain = Whole - P.cost(Lo, Cut) - P.cost(Cut, Hi);
    if (Gain > BestGain) { // strict ">": ties resolve to the lowest index
      BestGain = Gain;
      BestCut = Cut;
    }
  }
  if (BestCut == 0)
    return;
  double Delta = std::fabs(P.mean(Lo, BestCut) - P.mean(BestCut, Hi));
  if (Delta < Opts.MinDelta)
    return;
  --SegmentsLeft;
  Cuts.push_back(BestCut);
  // Left first so recursion order (and hence SegmentsLeft consumption) is
  // deterministic.
  splitRange(P, Lo, BestCut, Opts, SegmentsLeft, Cuts);
  splitRange(P, BestCut, Hi, Opts, SegmentsLeft, Cuts);
}

} // namespace

std::vector<size_t> segmentSeries(const std::vector<double> &Values,
                                  const std::vector<double> &Weights,
                                  const SeriesSegmentationOptions &Opts) {
  std::vector<size_t> Cuts;
  if (Values.empty() || Values.size() != Weights.size())
    return Cuts;
  PrefixStats P(Values, Weights);
  size_t SegmentsLeft = Opts.MaxSegments == 0 ? 1 : Opts.MaxSegments;
  splitRange(P, 0, Values.size(), Opts, SegmentsLeft, Cuts);
  std::sort(Cuts.begin(), Cuts.end());
  return Cuts;
}

std::vector<PhaseSegment> segmentPhases(const TimeSeriesData &TS,
                                        const SegmentationOptions &Opts) {
  std::vector<PhaseSegment> Phases;
  if (TS.Windows.empty())
    return Phases;

  // The series is the per-window miss rate weighted by window events; the
  // percentage-point knob maps onto the generic core's value-unit MinDelta.
  std::vector<double> Values, Weights;
  Values.reserve(TS.Windows.size());
  Weights.reserve(TS.Windows.size());
  for (const TimeSeriesWindow &W : TS.Windows) {
    Weights.push_back(double(W.Events));
    Values.push_back(W.Events == 0 ? 0.0 : double(W.Mispredictions) /
                                               double(W.Events));
  }
  SeriesSegmentationOptions SOpts;
  SOpts.MinDelta = Opts.MinDeltaPercent / 100.0;
  SOpts.MinSegment = Opts.MinWindows;
  SOpts.MaxSegments = Opts.MaxPhases;
  std::vector<size_t> Cuts = segmentSeries(Values, Weights, SOpts);
  Cuts.push_back(0);
  Cuts.push_back(TS.Windows.size());
  std::sort(Cuts.begin(), Cuts.end());

  for (size_t I = 0; I + 1 < Cuts.size(); ++I) {
    size_t Lo = Cuts[I], Hi = Cuts[I + 1];
    if (Lo == Hi)
      continue;
    PhaseSegment S;
    S.FirstWindow = uint32_t(Lo);
    S.LastWindow = uint32_t(Hi - 1);
    S.StartEvent = uint64_t(Lo) * TS.WindowEvents;
    for (size_t W = Lo; W < Hi; ++W) {
      S.Events += TS.Windows[W].Events;
      S.Taken += TS.Windows[W].Taken;
      S.Mispredictions += TS.Windows[W].Mispredictions;
    }
    Phases.push_back(S);
  }
  return Phases;
}

uint64_t estimateWarmupEvents(const TimeSeriesData &TS,
                              const std::vector<PhaseSegment> &Phases) {
  if (Phases.size() < 2)
    return 0;
  double Steady = Phases.back().missRatePercent();
  double Tolerance = std::max(1.0, 0.25 * Steady);
  size_t First = Phases.size() - 1;
  while (First > 0 &&
         std::fabs(Phases[First - 1].missRatePercent() - Steady) <= Tolerance)
    --First;
  if (First == 0)
    return 0;
  uint64_t Warmup = Phases[First].StartEvent;
  return Warmup > TS.TotalEvents ? TS.TotalEvents : Warmup;
}

JsonValue timelineJson(const TimeSeriesData &TS,
                       const std::vector<int32_t> &SplitBranches,
                       const SegmentationOptions &Opts) {
  std::vector<PhaseSegment> Phases = segmentPhases(TS, Opts);
  uint64_t Warmup = estimateWarmupEvents(TS, Phases);

  JsonValue Doc = JsonValue::object();
  Doc.set("window_events", JsonValue::integer(int64_t(TS.WindowEvents)));
  Doc.set("num_windows", JsonValue::integer(int64_t(TS.Windows.size())));
  Doc.set("total_events", JsonValue::integer(int64_t(TS.TotalEvents)));
  Doc.set("mispredictions",
          JsonValue::integer(int64_t(TS.TotalMispredictions)));
  Doc.set("miss_rate_percent",
          JsonValue::number(TimeSeriesData::percent(TS.TotalMispredictions,
                                                    TS.TotalEvents)));
  Doc.set("taken_percent", JsonValue::number(TimeSeriesData::percent(
                               TS.TotalTaken, TS.TotalEvents)));
  Doc.set("phase_count", JsonValue::integer(int64_t(Phases.size())));
  Doc.set("warmup_events", JsonValue::integer(int64_t(Warmup)));
  Doc.set("steady_miss_rate_percent",
          JsonValue::number(Phases.empty() ? 0.0
                                           : Phases.back().missRatePercent()));

  // Phases as an object keyed by index so flattenReportMetrics turns each
  // numeric leaf into a gated dotted name (timeline.phases.0.miss_rate...).
  JsonValue PhasesObj = JsonValue::object();
  for (size_t I = 0; I < Phases.size(); ++I) {
    const PhaseSegment &S = Phases[I];
    JsonValue P = JsonValue::object();
    P.set("first_window", JsonValue::integer(int64_t(S.FirstWindow)));
    P.set("last_window", JsonValue::integer(int64_t(S.LastWindow)));
    P.set("start_event", JsonValue::integer(int64_t(S.StartEvent)));
    P.set("events", JsonValue::integer(int64_t(S.Events)));
    P.set("mispredictions", JsonValue::integer(int64_t(S.Mispredictions)));
    P.set("miss_rate_percent", JsonValue::number(S.missRatePercent()));
    P.set("taken_percent", JsonValue::number(S.takenPercent()));

    // Per-phase split for the attribution ledger's top branches.
    JsonValue Branches = JsonValue::object();
    for (int32_t B : SplitBranches) {
      if (B < 0 || uint32_t(B) >= TS.NumBranches)
        continue;
      TimeSeriesCell Sum;
      for (uint32_t W = S.FirstWindow; W <= S.LastWindow; ++W) {
        const TimeSeriesWindow &Win = TS.Windows[W];
        if (uint32_t(B) < Win.Branches.size()) {
          Sum.Events += Win.Branches[uint32_t(B)].Events;
          Sum.Taken += Win.Branches[uint32_t(B)].Taken;
          Sum.Mispredictions += Win.Branches[uint32_t(B)].Mispredictions;
        }
      }
      JsonValue Cell = JsonValue::object();
      Cell.set("events", JsonValue::integer(int64_t(Sum.Events)));
      Cell.set("mispredictions",
               JsonValue::integer(int64_t(Sum.Mispredictions)));
      Cell.set("miss_rate_percent",
               JsonValue::number(
                   TimeSeriesData::percent(Sum.Mispredictions, Sum.Events)));
      Branches.set(std::to_string(B), std::move(Cell));
    }
    P.set("branches", std::move(Branches));
    PhasesObj.set(std::to_string(I), std::move(P));
  }
  Doc.set("phases", std::move(PhasesObj));

  // Full series for plotting/artifacts. Arrays are not flattened, so these
  // rows are carried but not threshold-gated.
  JsonValue Windows = JsonValue::array();
  for (size_t I = 0; I < TS.Windows.size(); ++I) {
    const TimeSeriesWindow &W = TS.Windows[I];
    JsonValue Row = JsonValue::object();
    Row.set("start_event",
            JsonValue::integer(int64_t(uint64_t(I) * TS.WindowEvents)));
    Row.set("events", JsonValue::integer(int64_t(W.Events)));
    Row.set("taken", JsonValue::integer(int64_t(W.Taken)));
    Row.set("mispredictions", JsonValue::integer(int64_t(W.Mispredictions)));
    Row.set("miss_rate_percent", JsonValue::number(TimeSeriesData::percent(
                                     W.Mispredictions, W.Events)));
    Windows.push(std::move(Row));
  }
  Doc.set("windows", std::move(Windows));
  return Doc;
}

} // namespace bpcr
