//===- obs/Profiler.h - Process self-profiling ------------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The toolchain's self-profiling layer: turns the raw span timeline
/// (obs/TraceSpans.h) into per-category and per-site self-time vs
/// total-time statistics (wall and per-thread CPU), samples process RSS at
/// phase boundaries, folds in the counting-allocator totals
/// (support/CountingAlloc.h), and exports a collapsed-stack flamegraph
/// consumable by speedscope / FlameGraph.
///
/// Self time is a span's duration minus its *recorded* direct children's
/// durations, reconstructed per thread from the (Tid, Depth, StartNs)
/// nesting. When the per-category sampling cap dropped spans, the recorded
/// totals under-report; the profile keeps the schedule-independent opened
/// counts next to the recorded ones, flags affected categories, and carries
/// an estimated scale so readers are never silently misled (satellite of
/// ISSUE 7).
///
/// Determinism contract: `categories.*.opened` and the allocator counts are
/// pure functions of the work done — byte-identical across --jobs for one
/// binary. Everything carrying a clock reading (self/total/CPU times, p50,
/// RSS) is inherently run-dependent and is skipped by the compare gate.
///
/// Output surfaces: `bpcr profile <command>` (--profile-out JSON,
/// --flame-out collapsed stacks, --format table|json) and the gated
/// "profile" section of report schema v4.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_OBS_PROFILER_H
#define BPCR_OBS_PROFILER_H

#include "obs/TraceSpans.h"
#include "support/CountingAlloc.h"

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#if defined(__linux__)
#include <unistd.h>
#endif

namespace bpcr {

class JsonValue;
class Registry;

/// Aggregated statistics for one (category, name) instrumentation site,
/// over the *recorded* spans only.
struct ProfileSiteStats {
  std::string Category;
  std::string Name;
  uint64_t Count = 0;
  uint64_t TotalWallNs = 0;
  uint64_t SelfWallNs = 0;
  uint64_t TotalCpuNs = 0;
  uint64_t SelfCpuNs = 0;
  /// Exact nearest-rank quantiles over the recorded wall durations.
  uint64_t WallP50Ns = 0;
  uint64_t WallP95Ns = 0;
};

/// Aggregated statistics for one span category.
struct ProfileCategoryStats {
  std::string Category;
  /// Spans opened while tracing — schedule-independent (see
  /// SpanCategoryCount); the count the cross-machine gates compare.
  uint64_t Opened = 0;
  /// Spans that landed in a buffer; the times below cover only these.
  uint64_t Recorded = 0;
  uint64_t Dropped = 0;
  /// True when sampling dropped spans in this category: recorded times
  /// under-report true totals by roughly SampleScale.
  bool SampleCapped = false;
  /// Opened / Recorded (1.0 when nothing was dropped; 0 when nothing was
  /// recorded at all). Multiply the self/total times by this for a
  /// first-order estimate of the unsampled truth.
  double SampleScale = 1.0;
  uint64_t TotalWallNs = 0;
  uint64_t SelfWallNs = 0;
  uint64_t TotalCpuNs = 0;
  uint64_t SelfCpuNs = 0;
  uint64_t WallP50Ns = 0;
  uint64_t WallP95Ns = 0;
};

/// One RSS reading, stamped in the tracer's timestamp domain.
struct RssSample {
  std::string Label;
  uint64_t Ns = 0;
  uint64_t RssBytes = 0;
};

/// Per-tag counting-allocator totals with the tag's stable name.
struct ProfileAllocStats {
  std::string Tag;
  AllocTracker::TagStats Stats;
};

/// Everything Profiler::collect() derives; the input to the JSON / table /
/// flamegraph renderers.
struct ProfileData {
  /// Sorted by category name.
  std::vector<ProfileCategoryStats> Categories;
  /// Sorted by (category, name).
  std::vector<ProfileSiteStats> Sites;
  std::vector<RssSample> RssSamples;
  /// getrusage(RUSAGE_SELF) peak RSS; 0 where unsupported.
  uint64_t PeakRssBytes = 0;
  uint64_t SpansDropped = 0;
  /// Tracer-epoch elapsed time at collection — the "total wall" the
  /// acceptance bound (sum of top-level self times <= this) is against.
  uint64_t WallTotalNs = 0;
  std::vector<ProfileAllocStats> Allocs;
};

/// Coordinates the self-profiling switches and owns the RSS sample log.
/// Enabling cascades to the span tracer and the allocation tracker so one
/// flag arms every collection point.
class Profiler {
public:
  static Profiler &global() {
    static Profiler P;
    return P;
  }

  Profiler() = default;
  Profiler(const Profiler &) = delete;
  Profiler &operator=(const Profiler &) = delete;

  bool enabled() const { return Enabled; }

  /// Arms (or disarms) self-profiling: the span tracer (if not already on)
  /// and the counting-allocator tracker follow this flag.
  void setEnabled(bool On) {
    Enabled = On;
    AllocTracker::global().setEnabled(On);
    if (On && !SpanTracer::global().enabled())
      SpanTracer::global().setEnabled(true);
  }

  /// Current resident set size in bytes, from /proc/self/statm on Linux;
  /// 0 where unsupported. Header-inline (like the span recording half) so
  /// core can sample at phase boundaries without linking bpcr_obs.
  static uint64_t currentRssBytes() {
#if defined(__linux__)
    std::FILE *F = std::fopen("/proc/self/statm", "r");
    if (!F)
      return 0;
    unsigned long long Size = 0, Resident = 0;
    int Got = std::fscanf(F, "%llu %llu", &Size, &Resident);
    std::fclose(F);
    if (Got != 2)
      return 0;
    long Page = sysconf(_SC_PAGESIZE);
    if (Page <= 0)
      Page = 4096;
    return static_cast<uint64_t>(Resident) * static_cast<uint64_t>(Page);
#else
    return 0;
#endif
  }

  /// Records the process's current RSS under \p Label (a phase name). A
  /// no-op when disabled or where /proc is unavailable.
  void sampleRss(const char *Label) {
    if (!Enabled)
      return;
    uint64_t Rss = currentRssBytes();
    if (Rss == 0)
      return;
    RssSample S;
    S.Label = Label;
    S.Ns =
        SpanTracer::global().enabled() ? SpanTracer::global().elapsedNs() : 0;
    S.RssBytes = Rss;
    std::lock_guard<std::mutex> Lock(Mu);
    Samples.push_back(std::move(S));
  }

  /// Aggregates the tracer's spans, category counts, the RSS log and the
  /// allocator totals into one ProfileData. Call after work has quiesced.
  ProfileData collect(const SpanTracer &T = SpanTracer::global()) const;

  /// Drops the RSS log; the enabled flag is left alone.
  void clear() {
    std::lock_guard<std::mutex> Lock(Mu);
    Samples.clear();
  }

private:
  bool Enabled = false;
  mutable std::mutex Mu;
  std::vector<RssSample> Samples;
};

// -- Renderers and writers (obs/Profiler.cpp) -------------------------------

/// The profile as a JSON object — the standalone `--profile-out` document
/// body and the report's "profile" section. \p Reg contributes the pool.*
/// utilization metrics when non-null and enabled.
JsonValue profileJson(const ProfileData &P, const Registry *Reg = nullptr);

/// Human-readable table rendering (the `--format table` default).
std::string profileTable(const ProfileData &P, const Registry *Reg = nullptr);

/// Collapsed-stack flamegraph lines ("bpcr;parent;child <self-us>\n",
/// sorted), derived from the recorded span tree. Values are self wall time
/// in integer microseconds; zero-valued stacks are kept so every recorded
/// frame appears.
std::string collapsedStacks(const SpanTracer &T);

/// Writes \p Text to \p Path. \returns false and sets \p Error to an
/// errno-descriptive message on failure. \p What names the artifact in the
/// error ("profile", "flamegraph").
bool writeProfileText(const std::string &Path, const std::string &Text,
                      const char *What, std::string &Error);

} // namespace bpcr

#endif // BPCR_OBS_PROFILER_H
