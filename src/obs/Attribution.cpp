//===- obs/Attribution.cpp ------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Attribution.h"

#include "obs/Json.h"

using namespace bpcr;

namespace {

JsonValue replicasJson(const BranchAttribution &B) {
  JsonValue Replicas = JsonValue::array();
  for (const ReplicaStat &R : B.Replicas) {
    JsonValue J = JsonValue::object();
    J.set("id", JsonValue::integer(static_cast<int64_t>(R.ReplicaId)));
    J.set("executions", JsonValue::integer(R.Executions));
    J.set("mispredictions", JsonValue::integer(R.Mispredictions));
    Replicas.push(std::move(J));
  }
  return Replicas;
}

} // namespace

JsonValue bpcr::attributionJson(const AttributionLedger &L, unsigned TopK) {
  JsonValue B = JsonValue::object();

  const uint64_t TotalMiss = L.totalMispredictions();
  const uint64_t TotalExec = L.totalMeasuredExecutions();
  auto Top = L.topByMispredictions(TopK);
  uint64_t Covered = 0;
  for (const BranchAttribution *A : Top)
    Covered += A->Mispredictions;

  B.set("top_k", JsonValue::integer(static_cast<int64_t>(TopK)));
  B.set("branches_total", JsonValue::integer(static_cast<int64_t>(L.size())));
  B.set("total_executions", JsonValue::integer(TotalExec));
  B.set("total_mispredictions", JsonValue::integer(TotalMiss));
  // The cumulative-coverage line of the Pareto table: how much of the
  // program's misprediction cost the top-K branches account for. By
  // construction Covered <= TotalMiss and equals the sum of the "top"
  // entries' misprediction counts.
  B.set("covered_mispredictions", JsonValue::integer(Covered));
  B.set("coverage_percent",
        JsonValue::number(TotalMiss ? 100.0 * static_cast<double>(Covered) /
                                          static_cast<double>(TotalMiss)
                                    : 0.0));

  JsonValue TopArr = JsonValue::array();
  for (const BranchAttribution *A : Top) {
    JsonValue J = JsonValue::object();
    J.set("branch", JsonValue::integer(static_cast<int64_t>(A->BranchId)));
    J.set("strategy", JsonValue::str(A->Strategy));
    J.set("action", JsonValue::str(A->Action));
    J.set("executions", JsonValue::integer(A->MeasuredExecutions));
    J.set("mispredictions", JsonValue::integer(A->Mispredictions));
    J.set("miss_rate_percent", JsonValue::number(A->missRatePercent()));
    J.set("taken_percent", JsonValue::number(A->takenBiasPercent()));
    J.set("train_correct", JsonValue::integer(A->TrainCorrect));
    J.set("train_total", JsonValue::integer(A->TrainTotal));
    if (!A->RunnerUp.empty()) {
      J.set("runner_up", JsonValue::str(A->RunnerUp));
      J.set("runner_up_delta", JsonValue::integer(A->RunnerUpDelta));
    }
    if (A->Replicas.size() > 1)
      J.set("replicas", replicasJson(*A));
    TopArr.push(std::move(J));
  }
  B.set("top", std::move(TopArr));

  // Flattenable per-branch leaves ("branches.by_id.<id>.miss_rate_percent")
  // for the compare gate: stable under top-K ordering churn because every
  // executed branch appears, keyed by its id.
  JsonValue ById = JsonValue::object();
  for (const BranchAttribution &A : L.all()) {
    if (A.MeasuredExecutions == 0)
      continue;
    JsonValue J = JsonValue::object();
    J.set("executions", JsonValue::integer(A.MeasuredExecutions));
    J.set("mispredictions", JsonValue::integer(A.Mispredictions));
    J.set("miss_rate_percent", JsonValue::number(A.missRatePercent()));
    J.set("replica_count",
          JsonValue::integer(static_cast<int64_t>(
              A.Replicas.empty() ? 1 : A.Replicas.size())));
    ById.set(std::to_string(A.BranchId), std::move(J));
  }
  B.set("by_id", std::move(ById));
  return B;
}
