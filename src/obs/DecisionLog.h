//===- obs/DecisionLog.h - Per-branch replication decisions -----*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A queryable record of every per-branch decision the replication pipeline
/// makes: which strategy was selected, whether it was materialized, and if
/// not, why. The pipeline fills one of these unconditionally (the cost is a
/// handful of small strings per static branch); `bpcr report` and the JSON
/// report expose it. Header-only plain data so core can own it without a
/// link dependency on the obs library.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_OBS_DECISIONLOG_H
#define BPCR_OBS_DECISIONLOG_H

#include <cstdint>
#include <string>
#include <vector>

namespace bpcr {

/// What happened to a branch's selected strategy.
enum class DecisionAction : uint8_t {
  /// A per-branch replication was materialized.
  Applied,
  /// The branch is covered by an applied joint loop machine.
  AppliedJoint,
  /// The profile strategy won (or the branch was too cold to consider).
  KeptProfile,
  /// The machine's training gain was below the pipeline's minimum.
  SkippedGain,
  /// Replicating would have exceeded the code-size budget.
  SkippedBudget,
  /// The transformed module no longer had the structure the plan assumed
  /// (branch instance or loop not found, transform refused).
  SkippedStructure,
};

inline const char *decisionActionName(DecisionAction A) {
  switch (A) {
  case DecisionAction::Applied:
    return "applied";
  case DecisionAction::AppliedJoint:
    return "applied-joint";
  case DecisionAction::KeptProfile:
    return "kept-profile";
  case DecisionAction::SkippedGain:
    return "skipped-gain";
  case DecisionAction::SkippedBudget:
    return "skipped-budget";
  case DecisionAction::SkippedStructure:
    return "skipped-structure";
  }
  return "<bad>";
}

/// One pipeline decision about one branch (or one joint plan).
struct BranchDecision {
  /// Original branch id; for a joint-plan record, the first member.
  int32_t BranchId = -1;
  /// strategyKindName() of the selected strategy, or "joint" for a record
  /// describing a whole joint plan.
  std::string Strategy;
  DecisionAction Action = DecisionAction::KeptProfile;
  /// Extra correct training-trace predictions over the profile strategy.
  uint64_t EstimatedGain = 0;
  /// Estimated instructions the replication adds.
  uint64_t SizeCost = 0;
  /// Human-readable explanation ("gain 3 below minimum 16", ...).
  std::string Reason;
};

/// Ordered log of pipeline decisions, queryable per branch.
class DecisionLog {
public:
  void add(BranchDecision D) { Records.push_back(std::move(D)); }

  const std::vector<BranchDecision> &all() const { return Records; }
  size_t size() const { return Records.size(); }
  bool empty() const { return Records.empty(); }

  /// Every record about \p BranchId, in pipeline order.
  std::vector<const BranchDecision *> forBranch(int32_t BranchId) const {
    std::vector<const BranchDecision *> Out;
    for (const BranchDecision &D : Records)
      if (D.BranchId == BranchId)
        Out.push_back(&D);
    return Out;
  }

  /// Number of records with the given action.
  size_t countAction(DecisionAction A) const {
    size_t N = 0;
    for (const BranchDecision &D : Records)
      N += D.Action == A;
    return N;
  }

private:
  std::vector<BranchDecision> Records;
};

} // namespace bpcr

#endif // BPCR_OBS_DECISIONLOG_H
