//===- obs/Report.cpp -----------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Report.h"

#include "core/Pipeline.h"
#include "obs/Profiler.h"
#include "obs/TimeSeries.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

using namespace bpcr;

namespace {

JsonValue histogramJson(const Histogram &H) {
  JsonValue J = JsonValue::object();
  J.set("count", JsonValue::integer(H.count()));
  J.set("sum", JsonValue::number(H.sum()));
  J.set("min", JsonValue::number(H.min()));
  J.set("max", JsonValue::number(H.max()));
  J.set("mean", JsonValue::number(H.mean()));
  J.set("p50", JsonValue::number(H.p50()));
  J.set("p95", JsonValue::number(H.p95()));
  J.set("p99", JsonValue::number(H.p99()));
  return J;
}

} // namespace

JsonValue bpcr::metricsJson(const Registry &R) {
  JsonValue M = JsonValue::object();

  JsonValue Counters = JsonValue::object();
  for (const auto &[Name, C] : R.counters())
    Counters.set(Name, JsonValue::integer(C.value()));
  M.set("counters", std::move(Counters));

  JsonValue Gauges = JsonValue::object();
  for (const auto &[Name, G] : R.gauges())
    Gauges.set(Name, JsonValue::number(G.value()));
  M.set("gauges", std::move(Gauges));

  JsonValue Histograms = JsonValue::object();
  for (const auto &[Name, H] : R.histograms())
    Histograms.set(Name, histogramJson(H));
  M.set("histograms", std::move(Histograms));

  // Phase timers as a wall-time breakdown in nanoseconds.
  JsonValue Phases = JsonValue::object();
  for (const auto &[Name, H] : R.timers()) {
    JsonValue P = JsonValue::object();
    P.set("count", JsonValue::integer(H.count()));
    P.set("total_ns", JsonValue::integer(static_cast<int64_t>(H.sum())));
    P.set("mean_ns", JsonValue::number(H.mean()));
    P.set("p50_ns", JsonValue::number(H.p50()));
    P.set("p95_ns", JsonValue::number(H.p95()));
    P.set("p99_ns", JsonValue::number(H.p99()));
    Phases.set(Name, std::move(P));
  }
  M.set("phases", std::move(Phases));
  return M;
}

JsonValue bpcr::pipelineJson(const PipelineResult &PR) {
  JsonValue P = JsonValue::object();

  JsonValue Repl = JsonValue::object();
  Repl.set("loop", JsonValue::integer(static_cast<int64_t>(
                       PR.LoopReplications)));
  Repl.set("joint", JsonValue::integer(static_cast<int64_t>(
                        PR.JointReplications)));
  Repl.set("correlated", JsonValue::integer(static_cast<int64_t>(
                             PR.CorrelatedReplications)));
  P.set("replications", std::move(Repl));

  JsonValue Skipped = JsonValue::object();
  Skipped.set("budget", JsonValue::integer(static_cast<int64_t>(
                            PR.SkippedBudget)));
  Skipped.set("structure", JsonValue::integer(static_cast<int64_t>(
                               PR.SkippedStructure)));
  P.set("skipped", std::move(Skipped));

  JsonValue Size = JsonValue::object();
  Size.set("original_instructions", JsonValue::integer(PR.OrigInstructions));
  Size.set("transformed_instructions", JsonValue::integer(PR.NewInstructions));
  Size.set("factor", JsonValue::number(PR.sizeFactor()));
  P.set("code_size", std::move(Size));

  JsonValue Decisions = JsonValue::array();
  for (const BranchDecision &D : PR.Decisions.all()) {
    JsonValue J = JsonValue::object();
    J.set("branch", JsonValue::integer(static_cast<int64_t>(D.BranchId)));
    J.set("strategy", JsonValue::str(D.Strategy));
    J.set("action", JsonValue::str(decisionActionName(D.Action)));
    J.set("gain", JsonValue::integer(D.EstimatedGain));
    J.set("cost", JsonValue::integer(D.SizeCost));
    J.set("reason", JsonValue::str(D.Reason));
    Decisions.push(std::move(J));
  }
  P.set("decisions", std::move(Decisions));
  return P;
}

JsonValue bpcr::buildReport(const ReportMeta &Meta, const Registry &R,
                            const PipelineResult *PR) {
  JsonValue Doc = JsonValue::object();
  Doc.set("schema_version", JsonValue::integer(
                                static_cast<int64_t>(ReportSchemaVersion)));
  Doc.set("tool", JsonValue::str(Meta.Tool));
  if (!Meta.Command.empty())
    Doc.set("command", JsonValue::str(Meta.Command));
  if (!Meta.Workload.empty())
    Doc.set("workload", JsonValue::str(Meta.Workload));
  if (Meta.Seed)
    Doc.set("seed", JsonValue::integer(Meta.Seed));
  if (Meta.Events)
    Doc.set("events", JsonValue::integer(Meta.Events));
  Doc.set("metrics", metricsJson(R));
  if (PR) {
    Doc.set("pipeline", pipelineJson(*PR));
    if (!PR->Attribution.empty())
      Doc.set("branches", attributionJson(PR->Attribution, Meta.BranchTopK));
    if (!PR->Timeline.empty()) {
      // Phase splits follow the attribution ledger's top-K branches so the
      // timeline and branches sections describe the same suspects.
      std::vector<int32_t> TopIds;
      for (const BranchAttribution *A :
           PR->Attribution.topByMispredictions(Meta.BranchTopK))
        TopIds.push_back(A->BranchId);
      Doc.set("timeline", timelineJson(PR->Timeline, TopIds));
    }
  }
  // Self-profiling is opt-in (`bpcr profile`), so ordinary reports stay
  // byte-identical with and without the profiler compiled in.
  if (Profiler::global().enabled())
    Doc.set("profile", profileJson(Profiler::global().collect(), &R));
  return Doc;
}

bool bpcr::writeReportFile(const std::string &Path, const JsonValue &Report,
                           std::string &Error) {
  // A NaN/Inf member would serialize as null and silently corrupt the
  // comparison baselines; refuse with the offending path instead.
  std::string BadPath = findNonFinitePath(Report);
  if (!BadPath.empty()) {
    Error = "report contains a non-finite number at '" + BadPath + "'";
    return false;
  }
  std::string Text = Report.dump(2);
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    // Name the reason (ENOENT from a missing parent directory is the common
    // case) so `--metrics deep/dir/file.json` fails actionably.
    Error =
        "cannot open '" + Path + "' for writing: " + std::strerror(errno);
    return false;
  }
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  bool Ok = Written == Text.size();
  Ok &= std::fclose(F) == 0;
  if (!Ok)
    Error = "short write to '" + Path + "'";
  return Ok;
}
