//===- obs/Compare.h - Report diffing and regression gating -----*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diffs two versioned JSON run reports (obs/Report.h schema) metric by
/// metric and gates the deltas against configurable relative thresholds —
/// the machinery behind `bpcr compare OLD.json NEW.json`, which CI uses as
/// a perf-regression gate against checked-in baselines under
/// bench/baselines/.
///
/// Every numeric leaf of the report's "metrics", "pipeline" and "branches"
/// sections is flattened to a dotted name
/// ("counters.interp.branch_events", "pipeline.code_size.factor",
/// "branches.by_id.3.miss_rate_percent"). Rules map glob patterns over
/// those names
/// to a maximum relative delta and a direction (is an increase bad, a
/// decrease, or both). The first matching rule wins; built-in defaults
/// (appended after any threshold file's rules) skip wall-clock metrics
/// (`phases.*`, `*_ns*`, `*per_sec*`) and hold everything else to exact
/// equality, so `compare A A` passes and any drift in a deterministic
/// metric fails until a threshold explicitly allows it.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_OBS_COMPARE_H
#define BPCR_OBS_COMPARE_H

#include "obs/Json.h"

#include <string>
#include <vector>

namespace bpcr {

/// Which delta direction a rule treats as a regression.
enum class DeltaDirection : uint8_t { Up, Down, Both };

/// One threshold rule. Patterns are globs over flattened metric names; '*'
/// matches any (possibly empty) substring.
struct CompareRule {
  std::string Pattern;
  /// Maximum allowed relative delta |new-old|/|old| in the bad direction.
  double MaxRelDelta = 0.0;
  DeltaDirection Direction = DeltaDirection::Both;
  /// Report-only: the metric is shown but never fails the gate.
  bool Skip = false;
};

struct CompareOptions {
  /// Checked first, in order; the built-in defaults are appended last.
  std::vector<CompareRule> Rules;
};

/// Outcome for one flattened metric.
struct MetricDelta {
  std::string Name;
  double Old = 0.0;
  double New = 0.0;
  /// (new-old)/|old|; HUGE_VAL when old == 0 and new != 0.
  double RelDelta = 0.0;
  /// The rule that matched (pattern spelled out for the table).
  std::string RulePattern;
  double Threshold = 0.0;
  DeltaDirection Direction = DeltaDirection::Both;
  bool Skipped = false;
  /// Metric present in only one report.
  bool MissingOld = false;
  bool MissingNew = false;
  /// The delta crossed the threshold in the bad direction.
  bool Regressed = false;
};

struct CompareResult {
  std::vector<MetricDelta> Deltas;
  /// Schema mismatch or other structural problems; non-empty means the
  /// comparison itself is invalid (exit code 2).
  std::vector<std::string> Errors;
  /// Context differences worth a note (tool/workload/seed mismatch).
  std::vector<std::string> Warnings;
  unsigned Regressions = 0;
  bool ok() const { return Errors.empty() && Regressions == 0; }
};

/// Glob match with '*' wildcards only (no '?', no classes).
bool globMatch(const std::string &Pattern, const std::string &Name);

/// The built-in rule tail: skip wall-clock metrics, exact-match the rest.
std::vector<CompareRule> defaultCompareRules();

/// Flattens the report's numeric leaves ("metrics", "pipeline" and
/// "branches" sections; arrays like pipeline.decisions and branches.top are
/// intentionally not flattened).
std::vector<std::pair<std::string, double>>
flattenReportMetrics(const JsonValue &Report);

/// Diffs \p OldDoc -> \p NewDoc under \p Opts.
CompareResult compareReports(const JsonValue &OldDoc, const JsonValue &NewDoc,
                             const CompareOptions &Opts);

/// Parses a threshold file (JSON; format documented in
/// docs/OBSERVABILITY.md). \returns false and sets \p Error on malformed
/// input.
bool parseThresholdRules(const std::string &Text, CompareOptions &Opts,
                         std::string &Error);

/// Renders the per-metric delta table plus a pass/fail summary.
std::string renderCompareResult(const CompareResult &R);

/// The full comparison as a machine-readable document (`bpcr compare
/// --format json`): errors, warnings, a per-metric delta array (every
/// compared metric, including unchanged ones) and the regression count.
/// rel_delta is a number, or the string "inf" when the old value was zero
/// (JSON has no infinity).
JsonValue compareResultJson(const CompareResult &R);

} // namespace bpcr

#endif // BPCR_OBS_COMPARE_H
