//===- obs/Ledger.cpp -----------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Ledger.h"

#include "obs/Compare.h"
#include "obs/Report.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include <unistd.h>

using namespace bpcr;

namespace {

/// Flattened-name patterns that vary with wall clock, scheduling or
/// machine — the ledger's "perf" partition. Mirrors the built-in compare
/// skip rules plus the wall_ms/speedup gauges the bench thresholds skip.
const char *const WallClockPatterns[] = {
    "phases.*",       "*_ns*",
    "*per_sec*",      "*wall_ms*",
    "*speedup*",      "counters.obs.trace.*",
    "counters.pool.*", "gauges.pool.*",
    "histograms.pool.*",
};

/// Metrics whose counting semantics changed without a schema bump: the
/// ladder rewrite of the machine search (between report schema 2 and 3)
/// redefined what the search.* counters count, so records from schema <= 2
/// reports must not contribute those series to cross-version trends.
struct LedgerMigration {
  int MaxSchema;
  const char *Pattern;
};
const LedgerMigration Migrations[] = {
    {2, "counters.search.*"},
};

/// Drops shimmed-away metrics from \p Flat in place; \returns how many.
unsigned applyMigrations(int SchemaVersion,
                         std::vector<std::pair<std::string, double>> &Flat) {
  unsigned Dropped = 0;
  auto Shimmed = [&](const std::string &Name) {
    for (const LedgerMigration &M : Migrations)
      if (SchemaVersion <= M.MaxSchema && globMatch(M.Pattern, Name))
        return true;
    return false;
  };
  std::vector<std::pair<std::string, double>> Kept;
  Kept.reserve(Flat.size());
  for (auto &Entry : Flat) {
    if (Shimmed(Entry.first))
      ++Dropped;
    else
      Kept.push_back(std::move(Entry));
  }
  Flat = std::move(Kept);
  return Dropped;
}

/// Flattened numbers serialize as integers when they are integral and
/// exactly representable, keeping counter series tidy and round-trippable.
JsonValue metricNumber(double V) {
  constexpr double Exact = 9007199254740992.0; // 2^53
  if (V == static_cast<int64_t>(V) && V > -Exact && V < Exact)
    return JsonValue::integer(static_cast<int64_t>(V));
  return JsonValue::number(V);
}

JsonValue
metricsObject(const std::vector<std::pair<std::string, double>> &Flat) {
  JsonValue Obj = JsonValue::object();
  for (const auto &[Name, Value] : Flat)
    Obj.set(Name, metricNumber(Value));
  return Obj;
}

bool parseMetricsObject(const JsonValue *Obj,
                        std::vector<std::pair<std::string, double>> &Out) {
  if (!Obj)
    return true; // an absent section is an empty partition
  if (Obj->kind() != JsonValue::Kind::Object)
    return false;
  for (const auto &[Name, Value] : Obj->members()) {
    if (!Value.isNumber())
      return false;
    Out.emplace_back(Name, Value.asDouble());
  }
  return true;
}

} // namespace

bool bpcr::isWallClockMetric(const std::string &Name) {
  // The span-open counts are the one schedule-independent corner of the
  // profile section (see defaultCompareRules).
  if (globMatch("profile.categories.*.opened", Name))
    return false;
  if (globMatch("profile.*", Name))
    return true;
  for (const char *Pattern : WallClockPatterns)
    if (globMatch(Pattern, Name))
      return true;
  return false;
}

LedgerMeta bpcr::currentLedgerMeta() {
  LedgerMeta Meta;
  if (const char *Sha = std::getenv("BPCR_GIT_SHA"))
    Meta.GitSha = Sha;
  char Host[256] = {0};
  if (gethostname(Host, sizeof(Host) - 1) == 0)
    Meta.Host = Host;
  Meta.TimestampNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  return Meta;
}

bool bpcr::makeLedgerRecord(const JsonValue &Report, const LedgerMeta &Meta,
                            LedgerRecord &Out, std::string &Error) {
  const JsonValue *V = Report.find("schema_version");
  if (!V || !V->isNumber()) {
    Error = "report has no schema_version (not a bpcr run report?)";
    return false;
  }
  int Schema = static_cast<int>(V->asInt());
  if (Schema < MinLedgerSchemaVersion || Schema > ReportSchemaVersion) {
    Error = "report schema_version " + std::to_string(Schema) +
            " is outside the supported ledger range [" +
            std::to_string(MinLedgerSchemaVersion) + ", " +
            std::to_string(ReportSchemaVersion) + "]";
    return false;
  }

  Out = LedgerRecord();
  Out.SchemaVersion = Schema;
  Out.Meta = Meta;
  // Report context fields win over caller-provided blanks so bench
  // producers don't have to duplicate them.
  auto FillString = [&](const char *Key, std::string &Dst) {
    const JsonValue *J = Report.find(Key);
    if (Dst.empty() && J && J->kind() == JsonValue::Kind::String)
      Dst = J->asString();
  };
  FillString("tool", Out.Meta.Tool);
  FillString("command", Out.Meta.Command);
  FillString("workload", Out.Meta.Workload);
  auto FillInt = [&](const char *Key, uint64_t &Dst) {
    const JsonValue *J = Report.find(Key);
    if (Dst == 0 && J && J->isNumber())
      Dst = static_cast<uint64_t>(J->asInt());
  };
  FillInt("seed", Out.Meta.Seed);
  FillInt("events", Out.Meta.Events);

  auto Flat = flattenReportMetrics(Report);
  Out.MigrationDropped = applyMigrations(Schema, Flat);
  for (auto &Entry : Flat) {
    if (isWallClockMetric(Entry.first))
      Out.Perf.push_back(std::move(Entry));
    else
      Out.Metrics.push_back(std::move(Entry));
  }
  return true;
}

std::string bpcr::ledgerRecordLine(const LedgerRecord &R) {
  // Deterministic fields first, volatile metadata as one adjacent run, the
  // wall-clock partition last: a determinism check strips everything from
  // `"ts_ns"` through `"git_sha"` plus the trailing `"perf"` object and
  // byte-compares the rest.
  JsonValue Doc = JsonValue::object();
  Doc.set("ledger_version",
          JsonValue::integer(static_cast<int64_t>(R.LedgerVersion)));
  Doc.set("schema_version",
          JsonValue::integer(static_cast<int64_t>(R.SchemaVersion)));
  Doc.set("tool", JsonValue::str(R.Meta.Tool));
  Doc.set("command", JsonValue::str(R.Meta.Command));
  Doc.set("workload", JsonValue::str(R.Meta.Workload));
  Doc.set("seed", JsonValue::integer(R.Meta.Seed));
  Doc.set("events", JsonValue::integer(R.Meta.Events));
  Doc.set("jobs", JsonValue::integer(static_cast<int64_t>(R.Meta.Jobs)));
  if (R.MigrationDropped)
    Doc.set("migration_dropped",
            JsonValue::integer(static_cast<int64_t>(R.MigrationDropped)));
  Doc.set("ts_ns", JsonValue::integer(R.Meta.TimestampNs));
  Doc.set("host", JsonValue::str(R.Meta.Host));
  Doc.set("git_sha", JsonValue::str(R.Meta.GitSha));
  Doc.set("metrics", metricsObject(R.Metrics));
  Doc.set("perf", metricsObject(R.Perf));
  return Doc.dump(0);
}

bool bpcr::appendLedgerRecord(const std::string &Path, const LedgerRecord &R,
                              std::string &Error) {
  std::FILE *F = std::fopen(Path.c_str(), "ab");
  if (!F) {
    Error = "cannot open ledger '" + Path + "' for appending";
    return false;
  }
  std::string Line = ledgerRecordLine(R) + "\n";
  bool Ok = std::fwrite(Line.data(), 1, Line.size(), F) == Line.size();
  Ok &= std::fclose(F) == 0;
  if (!Ok)
    Error = "short write to ledger '" + Path + "'";
  return Ok;
}

bool bpcr::appendReportToLedger(const std::string &Path,
                                const JsonValue &Report,
                                const LedgerMeta &Meta, std::string &Error) {
  LedgerRecord R;
  if (!makeLedgerRecord(Report, Meta, R, Error))
    return false;
  return appendLedgerRecord(Path, R, Error);
}

bool bpcr::readLedger(const std::string &Path, std::vector<LedgerRecord> &Out,
                      std::vector<std::string> &Warnings,
                      std::string &Error) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Error = "cannot open ledger '" + Path + "' for reading";
    return false;
  }
  std::string Text;
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  bool ReadOk = std::ferror(F) == 0;
  std::fclose(F);
  if (!ReadOk) {
    Error = "read error on ledger '" + Path + "'";
    return false;
  }

  size_t LineNo = 0, Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    ++LineNo;
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;

    auto Skip = [&](const std::string &Why) {
      Warnings.push_back("ledger line " + std::to_string(LineNo) +
                         " skipped: " + Why);
    };
    std::string ParseError;
    JsonValue Doc = parseJson(Line, ParseError);
    if (!ParseError.empty()) {
      Skip(ParseError);
      continue;
    }
    if (Doc.kind() != JsonValue::Kind::Object) {
      Skip("record is not a JSON object");
      continue;
    }
    const JsonValue *LV = Doc.find("ledger_version");
    if (!LV || !LV->isNumber()) {
      Skip("missing ledger_version");
      continue;
    }
    if (LV->asInt() < 1 || LV->asInt() > LedgerRecordVersion) {
      Skip("unsupported ledger_version " + std::to_string(LV->asInt()));
      continue;
    }
    const JsonValue *SV = Doc.find("schema_version");
    if (!SV || !SV->isNumber() || SV->asInt() < MinLedgerSchemaVersion ||
        SV->asInt() > ReportSchemaVersion) {
      Skip("unsupported report schema_version");
      continue;
    }

    LedgerRecord R;
    R.LedgerVersion = static_cast<int>(LV->asInt());
    R.SchemaVersion = static_cast<int>(SV->asInt());
    auto Str = [&](const char *Key) -> std::string {
      const JsonValue *J = Doc.find(Key);
      return J && J->kind() == JsonValue::Kind::String ? J->asString() : "";
    };
    auto Int = [&](const char *Key) -> uint64_t {
      const JsonValue *J = Doc.find(Key);
      return J && J->isNumber() ? static_cast<uint64_t>(J->asInt()) : 0;
    };
    R.Meta.Tool = Str("tool");
    R.Meta.Command = Str("command");
    R.Meta.Workload = Str("workload");
    R.Meta.Seed = Int("seed");
    R.Meta.Events = Int("events");
    R.Meta.Jobs = static_cast<unsigned>(Int("jobs"));
    R.Meta.TimestampNs = Int("ts_ns");
    R.Meta.Host = Str("host");
    R.Meta.GitSha = Str("git_sha");
    R.MigrationDropped = static_cast<unsigned>(Int("migration_dropped"));
    if (!parseMetricsObject(Doc.find("metrics"), R.Metrics) ||
        !parseMetricsObject(Doc.find("perf"), R.Perf)) {
      Skip("metrics/perf must be objects of numbers");
      continue;
    }
    // Re-apply the shims so hand-built or historical records normalize the
    // same way freshly appended ones do.
    R.MigrationDropped += applyMigrations(R.SchemaVersion, R.Metrics);
    R.MigrationDropped += applyMigrations(R.SchemaVersion, R.Perf);
    Out.push_back(std::move(R));
  }
  return true;
}
