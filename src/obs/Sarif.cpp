//===- obs/Sarif.cpp ------------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Sarif.h"

#include <map>

using namespace bpcr;
using sa::Diagnostic;
using sa::Location;
using sa::Severity;

namespace {

JsonValue locationJson(const Location &Loc) {
  JsonValue J = JsonValue::object();
  J.set("qualified", JsonValue::str(Loc.qualifiedName()));
  if (Loc.FuncIdx >= 0) {
    J.set("function", JsonValue::integer(static_cast<int64_t>(Loc.FuncIdx)));
    if (!Loc.FuncName.empty())
      J.set("function_name", JsonValue::str(Loc.FuncName));
    if (Loc.BlockIdx >= 0) {
      J.set("block", JsonValue::integer(static_cast<int64_t>(Loc.BlockIdx)));
      if (Loc.InstIdx >= 0)
        J.set("inst", JsonValue::integer(static_cast<int64_t>(Loc.InstIdx)));
    }
  }
  return J;
}

/// SARIF logicalLocation for one IR location. "kind" follows the SARIF
/// taxonomy: function / declaration / module as the location narrows.
JsonValue logicalLocationJson(const Location &Loc) {
  JsonValue J = JsonValue::object();
  J.set("fullyQualifiedName", JsonValue::str(Loc.qualifiedName()));
  const char *Kind = Loc.FuncIdx < 0      ? "module"
                     : Loc.BlockIdx < 0   ? "function"
                                          : "declaration";
  J.set("kind", JsonValue::str(Kind));
  return J;
}

JsonValue sarifLocation(const Location &Loc, const std::string &ArtifactUri,
                        const std::string *Message = nullptr) {
  JsonValue L = JsonValue::object();
  if (Message) {
    JsonValue M = JsonValue::object();
    M.set("text", JsonValue::str(*Message));
    L.set("message", std::move(M));
  }
  JsonValue Phys = JsonValue::object();
  JsonValue Art = JsonValue::object();
  Art.set("uri", JsonValue::str(ArtifactUri));
  Phys.set("artifactLocation", std::move(Art));
  L.set("physicalLocation", std::move(Phys));
  JsonValue Logical = JsonValue::array();
  Logical.push(logicalLocationJson(Loc));
  L.set("logicalLocations", std::move(Logical));
  return L;
}

} // namespace

JsonValue bpcr::diagnosticsJson(const std::vector<Diagnostic> &Diags) {
  JsonValue Doc = JsonValue::object();
  JsonValue Counts = JsonValue::object();
  Counts.set("errors",
             JsonValue::integer(countSeverity(Diags, Severity::Error)));
  Counts.set("warnings",
             JsonValue::integer(countSeverity(Diags, Severity::Warning)));
  Counts.set("notes",
             JsonValue::integer(countSeverity(Diags, Severity::Note)));
  Doc.set("counts", std::move(Counts));

  JsonValue Arr = JsonValue::array();
  for (const Diagnostic &D : Diags) {
    JsonValue J = JsonValue::object();
    J.set("severity", JsonValue::str(severityName(D.Sev)));
    J.set("rule", JsonValue::str(D.fullRuleId()));
    J.set("location", locationJson(D.Loc));
    J.set("message", JsonValue::str(D.Message));
    if (!D.Notes.empty()) {
      JsonValue Notes = JsonValue::array();
      for (const sa::DiagNote &N : D.Notes) {
        JsonValue NJ = JsonValue::object();
        NJ.set("location", locationJson(N.Loc));
        NJ.set("message", JsonValue::str(N.Message));
        Notes.push(std::move(NJ));
      }
      J.set("notes", std::move(Notes));
    }
    Arr.push(std::move(J));
  }
  Doc.set("diagnostics", std::move(Arr));
  return Doc;
}

JsonValue bpcr::sarifLog(const std::vector<Diagnostic> &Diags,
                         const std::string &ArtifactUri,
                         const std::vector<SarifRuleInfo> &Passes) {
  // Rule table: one entry per distinct fully-qualified rule id, in first-use
  // order, so results can reference rules by index.
  std::vector<std::string> RuleIds;
  std::map<std::string, size_t> RuleIndex;
  std::map<std::string, Severity> RuleLevel;
  for (const Diagnostic &D : Diags) {
    std::string Id = D.fullRuleId();
    auto [It, Inserted] = RuleIndex.insert({Id, RuleIds.size()});
    if (Inserted) {
      RuleIds.push_back(Id);
      RuleLevel[Id] = D.Sev;
    } else if (D.Sev > RuleLevel[Id]) {
      RuleLevel[Id] = D.Sev;
    }
  }

  JsonValue Rules = JsonValue::array();
  for (const std::string &Id : RuleIds) {
    JsonValue R = JsonValue::object();
    R.set("id", JsonValue::str(Id));
    for (const SarifRuleInfo &P : Passes)
      if (Id.rfind(P.PassId + ".", 0) == 0) {
        JsonValue Desc = JsonValue::object();
        Desc.set("text", JsonValue::str(P.Description));
        R.set("shortDescription", std::move(Desc));
        break;
      }
    JsonValue Config = JsonValue::object();
    Config.set("level", JsonValue::str(severityName(RuleLevel[Id])));
    R.set("defaultConfiguration", std::move(Config));
    Rules.push(std::move(R));
  }

  JsonValue Results = JsonValue::array();
  for (const Diagnostic &D : Diags) {
    JsonValue R = JsonValue::object();
    std::string Id = D.fullRuleId();
    R.set("ruleId", JsonValue::str(Id));
    R.set("ruleIndex",
          JsonValue::integer(static_cast<int64_t>(RuleIndex[Id])));
    R.set("level", JsonValue::str(severityName(D.Sev)));
    JsonValue Msg = JsonValue::object();
    Msg.set("text", JsonValue::str(D.Message));
    R.set("message", std::move(Msg));
    JsonValue Locs = JsonValue::array();
    Locs.push(sarifLocation(D.Loc, ArtifactUri));
    R.set("locations", std::move(Locs));
    if (!D.Notes.empty()) {
      JsonValue Related = JsonValue::array();
      for (const sa::DiagNote &N : D.Notes)
        Related.push(sarifLocation(N.Loc, ArtifactUri, &N.Message));
      R.set("relatedLocations", std::move(Related));
    }
    Results.push(std::move(R));
  }

  JsonValue Driver = JsonValue::object();
  Driver.set("name", JsonValue::str("bpcr-lint"));
  Driver.set("informationUri",
             JsonValue::str("https://example.invalid/bpcr"));
  Driver.set("rules", std::move(Rules));
  JsonValue Tool = JsonValue::object();
  Tool.set("driver", std::move(Driver));
  JsonValue Run = JsonValue::object();
  Run.set("tool", std::move(Tool));
  Run.set("results", std::move(Results));
  JsonValue Runs = JsonValue::array();
  Runs.push(std::move(Run));

  JsonValue Doc = JsonValue::object();
  Doc.set("$schema",
          JsonValue::str("https://json.schemastore.org/sarif-2.1.0.json"));
  Doc.set("version", JsonValue::str("2.1.0"));
  Doc.set("runs", std::move(Runs));
  return Doc;
}
