//===- obs/TraceSpans.cpp -------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/TraceSpans.h"

#include "obs/Json.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace bpcr;

JsonValue bpcr::spansJson(const SpanTracer &T, const std::string &Tool) {
  std::vector<SpanEvent> Events = T.snapshot();
  // Stable output: the per-thread buffers already hold completion order;
  // sort the merged view by start time so the file diffs cleanly.
  std::stable_sort(Events.begin(), Events.end(),
                   [](const SpanEvent &A, const SpanEvent &B) {
                     if (A.Tid != B.Tid)
                       return A.Tid < B.Tid;
                     return A.StartNs < B.StartNs;
                   });

  JsonValue Doc = JsonValue::object();
  JsonValue Arr = JsonValue::array();

  // Process metadata so the Perfetto UI labels the track.
  {
    JsonValue M = JsonValue::object();
    M.set("name", JsonValue::str("process_name"));
    M.set("ph", JsonValue::str("M"));
    M.set("pid", JsonValue::integer(int64_t{1}));
    JsonValue Args = JsonValue::object();
    Args.set("name", JsonValue::str(Tool.empty() ? "bpcr" : Tool));
    M.set("args", std::move(Args));
    Arr.push(std::move(M));
  }

  for (const SpanEvent &E : Events) {
    JsonValue J = JsonValue::object();
    J.set("name", JsonValue::str(E.Name));
    J.set("cat", JsonValue::str(E.Category));
    J.set("ph", JsonValue::str("X"));
    // Chrome Trace timestamps are microseconds; fractional values keep the
    // nanosecond resolution.
    J.set("ts", JsonValue::number(static_cast<double>(E.StartNs) / 1000.0));
    J.set("dur", JsonValue::number(static_cast<double>(E.DurNs) / 1000.0));
    J.set("pid", JsonValue::integer(int64_t{1}));
    J.set("tid", JsonValue::integer(static_cast<int64_t>(E.Tid)));
    if (!E.Args.empty()) {
      JsonValue Args = JsonValue::object();
      for (const SpanArg &A : E.Args) {
        switch (A.K) {
        case SpanArg::Kind::Int:
          Args.set(A.Key, JsonValue::integer(A.I));
          break;
        case SpanArg::Kind::Double:
          Args.set(A.Key, JsonValue::number(A.D));
          break;
        case SpanArg::Kind::Str:
          Args.set(A.Key, JsonValue::str(A.S));
          break;
        }
      }
      J.set("args", std::move(Args));
    }
    Arr.push(std::move(J));
  }

  // Counter tracks ("ph":"C") merge rate curves — e.g. the timeline layer's
  // windowed misprediction rate — onto the same timeline as the spans.
  std::vector<CounterTrack> Tracks = T.counterTracks();
  size_t CounterEvents = 0;
  for (const CounterTrack &Track : Tracks) {
    for (const CounterSample &S : Track.Samples) {
      JsonValue J = JsonValue::object();
      J.set("name", JsonValue::str(Track.Name));
      J.set("cat", JsonValue::str("timeline"));
      J.set("ph", JsonValue::str("C"));
      J.set("ts", JsonValue::number(static_cast<double>(S.Ns) / 1000.0));
      J.set("pid", JsonValue::integer(int64_t{1}));
      JsonValue Args = JsonValue::object();
      Args.set("value", JsonValue::number(S.Value));
      J.set("args", std::move(Args));
      Arr.push(std::move(J));
      ++CounterEvents;
    }
  }

  Doc.set("traceEvents", std::move(Arr));
  Doc.set("displayTimeUnit", JsonValue::str("ms"));

  JsonValue Other = JsonValue::object();
  if (!Tool.empty())
    Other.set("tool", JsonValue::str(Tool));
  Other.set("span_count", JsonValue::integer(static_cast<int64_t>(
                              Events.size())));
  Other.set("spans_dropped", JsonValue::integer(T.droppedCount()));
  Other.set("counter_events",
            JsonValue::integer(static_cast<int64_t>(CounterEvents)));
  Doc.set("otherData", std::move(Other));
  return Doc;
}

bool bpcr::writeSpanTrace(const std::string &Path, const SpanTracer &T,
                          const std::string &Tool, std::string &Error) {
  std::string Text = spansJson(T, Tool).dump(0);
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    // Name the reason (ENOENT from a missing parent directory is the common
    // case) so the caller's message is actionable, not a generic failure.
    Error = "cannot open trace file '" + Path +
            "' for writing: " + std::strerror(errno);
    return false;
  }
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  bool Ok = Written == Text.size();
  Ok &= std::fclose(F) == 0;
  if (!Ok)
    Error = "short write to trace file '" + Path + "'";
  return Ok;
}

bool bpcr::extractTraceOutFlag(int &Argc, char **Argv, std::string &Path,
                               std::string &Error) {
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--trace-out") != 0)
      continue;
    if (I + 1 >= Argc) {
      Error = "option '--trace-out' needs a file argument";
      return false;
    }
    Path = Argv[I + 1];
    // Splice the flag and its value out of argv so downstream parsers
    // (google-benchmark, the bench binaries' own options) never see it.
    for (int J = I; J + 2 < Argc; ++J)
      Argv[J] = Argv[J + 2];
    Argc -= 2;
    break;
  }
  if (Path.empty()) {
    if (const char *Env = std::getenv("BPCR_TRACE_OUT"))
      Path = Env;
  }
  if (!Path.empty())
    SpanTracer::global().setEnabled(true);
  return true;
}

int bpcr::finishSpanTrace(const std::string &Path, const char *Tool) {
  if (Path.empty())
    return 0;
  std::string Error;
  if (!writeSpanTrace(Path, SpanTracer::global(), Tool, Error)) {
    std::fprintf(stderr, "%s: error: %s\n", Tool, Error.c_str());
    return 1;
  }
  std::printf("wrote span trace to %s (%zu spans, %llu dropped)\n",
              Path.c_str(), SpanTracer::global().spanCount(),
              static_cast<unsigned long long>(
                  SpanTracer::global().droppedCount()));
  return 0;
}
