//===- trace/ColumnarTrace.h - Structure-of-arrays trace --------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Columnar (structure-of-arrays) trace storage. Where the legacy Trace is
/// one 8-byte BranchEvent per event, the columnar form keeps two parallel
/// columns — a flat int32 branch-id array and a bit-packed direction
/// stream (trace/Bitstream.h) — plus an optional per-branch index:
/// execution count, taken count, and a word-aligned per-branch direction
/// bitstream for every static branch. The whole event path (profile fill,
/// machine scoring, predictor evaluation) walks these flat buffers instead
/// of an object-at-a-time event vector; see docs/PERFORMANCE.md.
///
/// Event order is identical to the legacy trace: materialize() is the
/// exact inverse of fromEvents(). The per-branch bitstream of branch b is
/// the subsequence of direction bits at positions where Ids[i] == b, in
/// global order — the same stream a BranchProfile's Outcomes vector holds.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_TRACE_COLUMNARTRACE_H
#define BPCR_TRACE_COLUMNARTRACE_H

#include "trace/Bitstream.h"
#include "trace/Trace.h"

#include <cstdint>
#include <vector>

namespace bpcr {

/// Per-branch slice of the columnar index.
struct BranchColumn {
  uint64_t Executions = 0;
  uint64_t TakenCount = 0;
  /// Direction bits of this branch's events in execution order,
  /// word-aligned so kernels can walk it without bit-offset fixups.
  BitstreamView Bits;
};

class ColumnarTrace {
public:
  using IdVector =
      std::vector<int32_t, CountingAllocator<int32_t, AllocTag::TraceBuffer>>;

  ColumnarTrace() = default;

  void reserve(size_t N) {
    Ids.reserve(N);
    Dirs.reserveBits(N);
  }

  /// Appends one event. Invalidates the index.
  void append(int32_t BranchId, bool Taken) {
    Ids.push_back(BranchId);
    Dirs.push(Taken);
    Indexed = false;
  }

  /// Drops all events and the index.
  void clear() {
    Ids.clear();
    Dirs.clear();
    Indexed = false;
    Counts.clear();
    TakenCounts.clear();
    WordOffsets.clear();
    BranchWords.clear();
    OutOfRangeEvents = 0;
  }

  /// Appends \p Run identical events (run-length decode fast path).
  void appendRun(int32_t BranchId, bool Taken, uint64_t Run) {
    Ids.insert(Ids.end(), static_cast<size_t>(Run), BranchId);
    Dirs.appendRun(Taken, Run);
    Indexed = false;
  }

  size_t size() const { return Ids.size(); }
  bool empty() const { return Ids.empty(); }

  int32_t branchId(size_t I) const { return Ids[I]; }
  bool taken(size_t I) const { return Dirs.bit(I); }

  const IdVector &ids() const { return Ids; }
  /// Global direction stream, one bit per event in trace order.
  BitstreamView directions() const { return Dirs.view(); }

  /// Builds the per-branch index for ids in [0, NumBranches): execution
  /// and taken counts plus the word-aligned per-branch bitstreams. Events
  /// with out-of-range ids are counted in outOfRange() and left out of the
  /// index (mirrors sa::BranchProfileCounts::fromTrace). Records
  /// `trace.columnar.*` metrics when the observability registry is on.
  void finalize(uint32_t NumBranches);

  bool indexed() const { return Indexed; }
  uint32_t numBranches() const {
    return static_cast<uint32_t>(Counts.size());
  }
  uint64_t outOfRange() const { return OutOfRangeEvents; }

  /// Index lookups; finalize() must have run.
  BranchColumn branch(uint32_t Id) const {
    BranchColumn C;
    C.Executions = Counts[Id];
    C.TakenCount = TakenCounts[Id];
    C.Bits = BitstreamView(BranchWords.data() + WordOffsets[Id], Counts[Id]);
    return C;
  }

  /// Bytes held by the id column, direction column and index — the
  /// numerator of the bytes/event figure in `micro_throughput`.
  size_t bytesUsed() const;

  /// Converts a legacy event vector (same order).
  static ColumnarTrace fromEvents(const Trace &T);

  /// Expands back to the legacy event vector (exact inverse of
  /// fromEvents; used by round-trip tests and legacy consumers).
  Trace materialize() const;

private:
  IdVector Ids;
  BitstreamBuilder Dirs;

  // Index (valid while Indexed).
  bool Indexed = false;
  std::vector<uint64_t> Counts;
  std::vector<uint64_t> TakenCounts;
  std::vector<size_t> WordOffsets;
  BitstreamBuilder::WordVector BranchWords;
  uint64_t OutOfRangeEvents = 0;
};

} // namespace bpcr

#endif // BPCR_TRACE_COLUMNARTRACE_H
