//===- trace/Trace.h - Branch traces ----------------------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The branch trace: the sequence of (branch id, direction) events a program
/// run produces. This is the paper's central data structure — every
/// prediction strategy and every state machine is trained on and evaluated
/// against such traces.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_TRACE_TRACE_H
#define BPCR_TRACE_TRACE_H

#include "support/CountingAlloc.h"

#include <cstdint>
#include <vector>

namespace bpcr {

/// One executed conditional branch.
struct BranchEvent {
  int32_t BranchId = 0;
  bool Taken = false;

  bool operator==(const BranchEvent &O) const {
    return BranchId == O.BranchId && Taken == O.Taken;
  }
};

/// A program run's branch event sequence, in execution order. The buffer
/// is one of the process's largest allocations, so it reports into the
/// opt-in allocation tracker (support/CountingAlloc.h) for `bpcr profile`.
using Trace =
    std::vector<BranchEvent,
                CountingAllocator<BranchEvent, AllocTag::TraceBuffer>>;

} // namespace bpcr

#endif // BPCR_TRACE_TRACE_H
