//===- trace/Sinks.h - Concrete trace sinks ---------------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TraceSink implementations: collect events into a Trace, count them, or
/// fan out to several sinks at once.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_TRACE_SINKS_H
#define BPCR_TRACE_SINKS_H

#include "interp/TraceSink.h"
#include "trace/ColumnarTrace.h"
#include "trace/Trace.h"

#include <vector>

namespace bpcr {

/// Appends every event to an in-memory Trace.
class CollectingSink : public TraceSink {
public:
  /// Pre-sizes the event buffer; callers that know the branch-event cap
  /// pass it here so the per-event push_back never reallocates.
  void reserve(size_t N) { Events.reserve(N); }

  void onBranch(const Instruction &Br, bool Taken) override {
    Events.push_back({Br.BranchId, Taken});
  }

  void onBatch(const BranchBatchEvent *Ev, size_t N) override {
    for (size_t I = 0; I < N; ++I)
      Events.push_back({Ev[I].Br->BranchId, Ev[I].Taken});
  }

  const Trace &trace() const { return Events; }
  Trace takeTrace() { return std::move(Events); }

private:
  Trace Events;
};

/// Like CollectingSink but records the *original* branch ids, so that a
/// replicated program produces a trace comparable with its source program.
class OrigIdCollectingSink : public TraceSink {
public:
  void reserve(size_t N) { Events.reserve(N); }

  void onBranch(const Instruction &Br, bool Taken) override {
    Events.push_back({Br.OrigBranchId, Taken});
  }

  void onBatch(const BranchBatchEvent *Ev, size_t N) override {
    for (size_t I = 0; I < N; ++I)
      Events.push_back({Ev[I].Br->OrigBranchId, Ev[I].Taken});
  }

  const Trace &trace() const { return Events; }
  Trace takeTrace() { return std::move(Events); }

private:
  Trace Events;
};

/// Counts events without storing them.
class CountingSink : public TraceSink {
public:
  void onBranch(const Instruction &, bool Taken) override {
    ++Total;
    if (Taken)
      ++TakenCount;
  }

  void onBatch(const BranchBatchEvent *Ev, size_t N) override {
    Total += N;
    for (size_t I = 0; I < N; ++I)
      TakenCount += Ev[I].Taken ? 1 : 0;
  }

  uint64_t total() const { return Total; }
  uint64_t taken() const { return TakenCount; }

private:
  uint64_t Total = 0;
  uint64_t TakenCount = 0;
};

/// Forwards every event to each registered sink, in registration order.
class MultiSink : public TraceSink {
public:
  void add(TraceSink *S) { Sinks.push_back(S); }

  void onBranch(const Instruction &Br, bool Taken) override {
    for (TraceSink *S : Sinks)
      S->onBranch(Br, Taken);
  }

  /// Forwards whole batches so each child pays one virtual call per flush
  /// (children without an override expand them in registration order,
  /// preserving the exact legacy event interleaving).
  void onBatch(const BranchBatchEvent *Ev, size_t N) override {
    for (TraceSink *S : Sinks)
      S->onBatch(Ev, N);
  }

private:
  std::vector<TraceSink *> Sinks;
};

/// Appends every event to a ColumnarTrace: the id column and the packed
/// direction bits, no per-event virtual call (batches arrive via
/// onBatch). Set \p UseOrigIds to record original branch ids, like
/// OrigIdCollectingSink.
class ColumnarCollectingSink : public TraceSink {
public:
  explicit ColumnarCollectingSink(bool UseOrigIds = false)
      : UseOrigIds(UseOrigIds) {}

  void reserve(size_t N) { Events.reserve(N); }

  void onBranch(const Instruction &Br, bool Taken) override {
    Events.append(UseOrigIds ? Br.OrigBranchId : Br.BranchId, Taken);
  }

  void onBatch(const BranchBatchEvent *Ev, size_t N) override {
    if (UseOrigIds)
      for (size_t I = 0; I < N; ++I)
        Events.append(Ev[I].Br->OrigBranchId, Ev[I].Taken);
    else
      for (size_t I = 0; I < N; ++I)
        Events.append(Ev[I].Br->BranchId, Ev[I].Taken);
  }

  const ColumnarTrace &trace() const { return Events; }
  ColumnarTrace takeTrace() { return std::move(Events); }

private:
  ColumnarTrace Events;
  bool UseOrigIds;
};

/// Historical name of MultiSink.
using TeeSink = MultiSink;

} // namespace bpcr

#endif // BPCR_TRACE_SINKS_H
