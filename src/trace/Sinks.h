//===- trace/Sinks.h - Concrete trace sinks ---------------------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TraceSink implementations: collect events into a Trace, count them, or
/// fan out to several sinks at once.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_TRACE_SINKS_H
#define BPCR_TRACE_SINKS_H

#include "interp/TraceSink.h"
#include "trace/Trace.h"

#include <vector>

namespace bpcr {

/// Appends every event to an in-memory Trace.
class CollectingSink : public TraceSink {
public:
  /// Pre-sizes the event buffer; callers that know the branch-event cap
  /// pass it here so the per-event push_back never reallocates.
  void reserve(size_t N) { Events.reserve(N); }

  void onBranch(const Instruction &Br, bool Taken) override {
    Events.push_back({Br.BranchId, Taken});
  }

  const Trace &trace() const { return Events; }
  Trace takeTrace() { return std::move(Events); }

private:
  Trace Events;
};

/// Like CollectingSink but records the *original* branch ids, so that a
/// replicated program produces a trace comparable with its source program.
class OrigIdCollectingSink : public TraceSink {
public:
  void reserve(size_t N) { Events.reserve(N); }

  void onBranch(const Instruction &Br, bool Taken) override {
    Events.push_back({Br.OrigBranchId, Taken});
  }

  const Trace &trace() const { return Events; }
  Trace takeTrace() { return std::move(Events); }

private:
  Trace Events;
};

/// Counts events without storing them.
class CountingSink : public TraceSink {
public:
  void onBranch(const Instruction &, bool Taken) override {
    ++Total;
    if (Taken)
      ++TakenCount;
  }

  uint64_t total() const { return Total; }
  uint64_t taken() const { return TakenCount; }

private:
  uint64_t Total = 0;
  uint64_t TakenCount = 0;
};

/// Forwards every event to each registered sink, in registration order.
class MultiSink : public TraceSink {
public:
  void add(TraceSink *S) { Sinks.push_back(S); }

  void onBranch(const Instruction &Br, bool Taken) override {
    for (TraceSink *S : Sinks)
      S->onBranch(Br, Taken);
  }

private:
  std::vector<TraceSink *> Sinks;
};

/// Historical name of MultiSink.
using TeeSink = MultiSink;

} // namespace bpcr

#endif // BPCR_TRACE_SINKS_H
