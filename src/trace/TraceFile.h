//===- trace/TraceFile.h - Compressed trace serialization -------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact binary trace encoding (varint branch-id deltas plus run-length
/// coding of repeated events). The paper notes that "in compressed form a
/// trace of 5 million branches occupies about [a] MB"; this format achieves
/// the same order of density on the synthetic workloads.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_TRACE_TRACEFILE_H
#define BPCR_TRACE_TRACEFILE_H

#include "trace/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace bpcr {

class ColumnarTrace;

/// Encodes \p T into the compact binary format.
std::vector<uint8_t> encodeTrace(const Trace &T);

/// Decodes a buffer produced by encodeTrace.
/// \param[out] Out receives the decoded events.
/// \param[out] Error describes the failure (bad magic, unsupported
///             version, truncation, corrupt varint, ...) with its byte
///             offset where applicable.
/// \returns false if the buffer is truncated or malformed.
bool decodeTrace(const std::vector<uint8_t> &Buf, Trace &Out,
                 std::string &Error);

inline bool decodeTrace(const std::vector<uint8_t> &Buf, Trace &Out) {
  std::string Error;
  return decodeTrace(Buf, Out, Error);
}

/// Writes \p T to \p Path. \returns false on I/O failure.
bool writeTraceFile(const std::string &Path, const Trace &T);

/// Reads a trace from \p Path. \returns false on I/O or format failure
/// with \p Error describing it.
bool readTraceFile(const std::string &Path, Trace &Out, std::string &Error);

inline bool readTraceFile(const std::string &Path, Trace &Out) {
  std::string Error;
  return readTraceFile(Path, Out, Error);
}

/// Decodes straight into the columnar layout: run-length groups become
/// appendRun calls, so no event-of-structs copy is ever built. Identical
/// acceptance and error messages to decodeTrace.
bool decodeTraceColumnar(const std::vector<uint8_t> &Buf, ColumnarTrace &Out,
                         std::string &Error);

/// Columnar counterpart of readTraceFile.
bool readTraceFileColumnar(const std::string &Path, ColumnarTrace &Out,
                           std::string &Error);

} // namespace bpcr

#endif // BPCR_TRACE_TRACEFILE_H
