//===- trace/Bitstream.h - Packed direction bitstreams ----------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bit-packed branch-direction streams: 64 outcomes per word, LSB-first
/// (bit i of word w is event 64*w + i, 1 = taken). The packed form is what
/// the columnar trace stores and what the scoring kernels
/// (core/ScoreKernels.h) consume word-at-a-time.
///
/// Invariant: bits past the logical length of a stream are zero. Builders
/// maintain it on every append, so kernels may read whole tail words and
/// mask only when the operation is length-sensitive (e.g. popcount of the
/// complement).
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_TRACE_BITSTREAM_H
#define BPCR_TRACE_BITSTREAM_H

#include "support/CountingAlloc.h"

#include <cstdint>
#include <vector>

namespace bpcr {

/// Non-owning view of a packed direction stream. Starts word-aligned;
/// sub-streams at arbitrary bit offsets are expressed as (view, StartBit)
/// pairs by the kernels that need them.
class BitstreamView {
public:
  BitstreamView() = default;
  BitstreamView(const uint64_t *Words, uint64_t NumBits)
      : Words(Words), NumBits(NumBits) {}

  uint64_t size() const { return NumBits; }
  bool empty() const { return NumBits == 0; }
  size_t numWords() const { return static_cast<size_t>((NumBits + 63) / 64); }

  /// Whole storage word; bits past size() are zero (builder invariant).
  uint64_t word(size_t I) const { return Words[I]; }
  const uint64_t *data() const { return Words; }

  bool bit(uint64_t I) const {
    return (Words[I >> 6] >> (I & 63)) & 1;
  }

private:
  const uint64_t *Words = nullptr;
  uint64_t NumBits = 0;
};

/// Owning, appendable packed stream. Storage is charged to the trace-buffer
/// allocation pool like the legacy event vectors.
class BitstreamBuilder {
public:
  using WordVector =
      std::vector<uint64_t, CountingAllocator<uint64_t, AllocTag::TraceBuffer>>;

  void clear() {
    Words.clear();
    NumBits = 0;
  }

  void reserveBits(uint64_t N) {
    Words.reserve(static_cast<size_t>((N + 63) / 64));
  }

  void push(bool B) {
    if ((NumBits & 63) == 0)
      Words.push_back(0);
    Words.back() |= static_cast<uint64_t>(B ? 1 : 0) << (NumBits & 63);
    ++NumBits;
  }

  /// Appends \p N copies of \p B (run-length decode fast path).
  void appendRun(bool B, uint64_t N) {
    if (!B) {
      // Zero bits only need the length to grow; tail words stay zero.
      NumBits += N;
      Words.resize(static_cast<size_t>((NumBits + 63) / 64), 0);
      return;
    }
    uint64_t End = NumBits + N;
    Words.resize(static_cast<size_t>((End + 63) / 64), 0);
    uint64_t I = NumBits;
    if (I & 63) {
      unsigned Off = static_cast<unsigned>(I & 63);
      unsigned Span = static_cast<unsigned>(
          End - I < 64 - Off ? End - I : 64 - Off);
      Words[static_cast<size_t>(I >> 6)] |=
          (Span == 64 ? ~0ULL : ((1ULL << Span) - 1)) << Off;
      I += Span;
    }
    for (; I + 64 <= End; I += 64)
      Words[static_cast<size_t>(I >> 6)] = ~0ULL;
    if (I < End)
      Words[static_cast<size_t>(I >> 6)] |= (1ULL << (End - I)) - 1;
    NumBits = End;
  }

  /// Appends every bit of \p V; whole-word memcpy when this builder is
  /// word-aligned (the common bulk-copy case), bit loop otherwise.
  void appendBits(BitstreamView V) {
    if ((NumBits & 63) == 0) {
      Words.insert(Words.end(), V.data(), V.data() + V.numWords());
      NumBits += V.size();
      return;
    }
    for (uint64_t I = 0, E = V.size(); I != E; ++I)
      push(V.bit(I));
  }

  uint64_t size() const { return NumBits; }
  bool bit(uint64_t I) const { return view().bit(I); }
  BitstreamView view() const { return {Words.data(), NumBits}; }
  size_t capacityBytes() const { return Words.capacity() * sizeof(uint64_t); }

private:
  WordVector Words;
  uint64_t NumBits = 0;
};

/// \returns the number of set bits in \p V (taken count of a stream). The
/// scalar reference used by tests; the tiered kernel lives in
/// core/ScoreKernels.h.
inline uint64_t popcountBitsScalar(BitstreamView V) {
  uint64_t N = 0;
  for (size_t I = 0, E = V.numWords(); I != E; ++I)
    N += static_cast<uint64_t>(__builtin_popcountll(V.word(I)));
  return N;
}

/// Expands \p V into one byte per bit (0/1), the legacy outcome-stream
/// shape. \p Out must hold V.size() bytes.
inline void expandBitsToBytes(BitstreamView V, uint8_t *Out) {
  uint64_t I = 0;
  const uint64_t N = V.size();
  for (size_t W = 0; I < N; ++W) {
    uint64_t Word = V.word(W);
    uint64_t End = N - I < 64 ? N - I : 64;
    for (uint64_t K = 0; K < End; ++K) {
      Out[I++] = static_cast<uint8_t>(Word & 1);
      Word >>= 1;
    }
  }
}

} // namespace bpcr

#endif // BPCR_TRACE_BITSTREAM_H
