//===- trace/TraceFile.cpp ------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Format:
//   magic "BPCT", u8 version (1), varint event count, then event groups.
//   Each group: varint header = (zigzag(id - prevId) << 1 | taken), then
//   varint runLength - 1 for how many additional times the identical event
//   repeats. Id deltas keep hot loops (which alternate among nearby ids)
//   to one byte per group; runs collapse long streaks of a loop branch.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceFile.h"

#include "trace/ColumnarTrace.h"

#include <cstdio>

using namespace bpcr;

namespace {

void putVarint(std::vector<uint8_t> &Buf, uint64_t V) {
  while (V >= 0x80) {
    Buf.push_back(static_cast<uint8_t>(V) | 0x80);
    V >>= 7;
  }
  Buf.push_back(static_cast<uint8_t>(V));
}

bool getVarint(const std::vector<uint8_t> &Buf, size_t &Pos, uint64_t &V) {
  V = 0;
  unsigned Shift = 0;
  while (Pos < Buf.size()) {
    uint8_t B = Buf[Pos++];
    if (Shift >= 63 && (B & 0x7f) > 1)
      return false; // overflow
    V |= static_cast<uint64_t>(B & 0x7f) << Shift;
    if (!(B & 0x80))
      return true;
    Shift += 7;
  }
  return false; // truncated
}

uint64_t zigzag(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) ^
         static_cast<uint64_t>(V >> 63);
}

int64_t unzigzag(uint64_t V) {
  return static_cast<int64_t>(V >> 1) ^ -static_cast<int64_t>(V & 1);
}

constexpr uint8_t Magic[4] = {'B', 'P', 'C', 'T'};
constexpr uint8_t Version = 1;

/// Shared decode loop: parses the header and event groups, handing each
/// run to \p Emit(Id, Taken, Run). \p Reserve(Count) is called once with
/// the declared event count; \p Decoded must be advanced by the caller's
/// emitter so the error messages match the legacy decoder exactly.
template <class ReserveFn, class EmitFn>
bool decodeTraceImpl(const std::vector<uint8_t> &Buf, std::string &Error,
                     ReserveFn Reserve, EmitFn Emit) {
  Error.clear();
  auto Fail = [&Error](std::string Msg) {
    Error = std::move(Msg);
    return false;
  };

  if (Buf.size() < 5)
    return Fail("trace header truncated: " + std::to_string(Buf.size()) +
                " bytes, need at least 5 (magic + version)");
  for (int I = 0; I < 4; ++I)
    if (Buf[I] != Magic[I])
      return Fail("bad magic: not a BPCT trace file");
  if (Buf[4] != Version)
    return Fail("unsupported trace version " + std::to_string(Buf[4]) +
                " (expected " + std::to_string(Version) + ")");

  size_t Pos = 5;
  uint64_t Count = 0;
  if (!getVarint(Buf, Pos, Count))
    return Fail("truncated or overlong varint in event count at byte " +
                std::to_string(Pos));
  Reserve(Count);

  int64_t PrevId = 0;
  uint64_t Decoded = 0;
  while (Decoded < Count) {
    size_t GroupStart = Pos;
    uint64_t Header = 0, RunMinus1 = 0;
    if (!getVarint(Buf, Pos, Header) || !getVarint(Buf, Pos, RunMinus1))
      return Fail("truncated event group at byte " +
                  std::to_string(GroupStart) + " (decoded " +
                  std::to_string(Decoded) + " of " +
                  std::to_string(Count) + " events)");
    bool Taken = Header & 1;
    int64_t Id = PrevId + unzigzag(Header >> 1);
    if (Id < 0 || Id > INT32_MAX)
      return Fail("branch id " + std::to_string(Id) +
                  " out of range at byte " + std::to_string(GroupStart));
    uint64_t Run = RunMinus1 + 1;
    if (Decoded + Run > Count)
      return Fail("run of " + std::to_string(Run) +
                  " events at byte " + std::to_string(GroupStart) +
                  " overflows the declared event count " +
                  std::to_string(Count));
    Emit(static_cast<int32_t>(Id), Taken, Run);
    Decoded += Run;
    PrevId = Id;
  }
  if (Pos != Buf.size())
    return Fail(std::to_string(Buf.size() - Pos) +
                " trailing bytes after the last event");
  return true;
}

} // namespace

std::vector<uint8_t> bpcr::encodeTrace(const Trace &T) {
  std::vector<uint8_t> Buf;
  Buf.reserve(16 + T.size() / 2);
  for (uint8_t B : Magic)
    Buf.push_back(B);
  Buf.push_back(Version);
  putVarint(Buf, T.size());

  int32_t PrevId = 0;
  size_t I = 0;
  while (I < T.size()) {
    const BranchEvent &E = T[I];
    size_t Run = 1;
    while (I + Run < T.size() && T[I + Run] == E)
      ++Run;
    uint64_t Header =
        (zigzag(static_cast<int64_t>(E.BranchId) - PrevId) << 1) |
        (E.Taken ? 1 : 0);
    putVarint(Buf, Header);
    putVarint(Buf, Run - 1);
    PrevId = E.BranchId;
    I += Run;
  }
  return Buf;
}

bool bpcr::decodeTrace(const std::vector<uint8_t> &Buf, Trace &Out,
                       std::string &Error) {
  Out.clear();
  return decodeTraceImpl(
      Buf, Error, [&Out](uint64_t Count) { Out.reserve(Count); },
      [&Out](int32_t Id, bool Taken, uint64_t Run) {
        for (uint64_t K = 0; K < Run; ++K)
          Out.push_back({Id, Taken});
      });
}

bool bpcr::decodeTraceColumnar(const std::vector<uint8_t> &Buf,
                               ColumnarTrace &Out, std::string &Error) {
  Out.clear();
  return decodeTraceImpl(
      Buf, Error, [&Out](uint64_t Count) { Out.reserve(Count); },
      [&Out](int32_t Id, bool Taken, uint64_t Run) {
        Out.appendRun(Id, Taken, Run);
      });
}

bool bpcr::writeTraceFile(const std::string &Path, const Trace &T) {
  std::vector<uint8_t> Buf = encodeTrace(T);
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  size_t Written = std::fwrite(Buf.data(), 1, Buf.size(), F);
  bool Ok = Written == Buf.size();
  Ok &= std::fclose(F) == 0;
  return Ok;
}

namespace {

bool readFileBytes(const std::string &Path, std::vector<uint8_t> &Buf,
                   std::string &Error) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Error = "cannot open '" + Path + "'";
    return false;
  }
  uint8_t Chunk[65536];
  size_t N;
  while ((N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Buf.insert(Buf.end(), Chunk, Chunk + N);
  bool ReadError = std::ferror(F) != 0;
  std::fclose(F);
  if (ReadError) {
    Error = "I/O error reading '" + Path + "'";
    return false;
  }
  return true;
}

} // namespace

bool bpcr::readTraceFile(const std::string &Path, Trace &Out,
                         std::string &Error) {
  std::vector<uint8_t> Buf;
  if (!readFileBytes(Path, Buf, Error))
    return false;
  if (!decodeTrace(Buf, Out, Error)) {
    Error = "'" + Path + "': " + Error;
    return false;
  }
  return true;
}

bool bpcr::readTraceFileColumnar(const std::string &Path, ColumnarTrace &Out,
                                 std::string &Error) {
  std::vector<uint8_t> Buf;
  if (!readFileBytes(Path, Buf, Error))
    return false;
  if (!decodeTraceColumnar(Buf, Out, Error)) {
    Error = "'" + Path + "': " + Error;
    return false;
  }
  return true;
}
