//===- trace/TraceFile.cpp ------------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Format:
//   magic "BPCT", u8 version (1), varint event count, then event groups.
//   Each group: varint header = (zigzag(id - prevId) << 1 | taken), then
//   varint runLength - 1 for how many additional times the identical event
//   repeats. Id deltas keep hot loops (which alternate among nearby ids)
//   to one byte per group; runs collapse long streaks of a loop branch.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceFile.h"

#include <cstdio>

using namespace bpcr;

namespace {

void putVarint(std::vector<uint8_t> &Buf, uint64_t V) {
  while (V >= 0x80) {
    Buf.push_back(static_cast<uint8_t>(V) | 0x80);
    V >>= 7;
  }
  Buf.push_back(static_cast<uint8_t>(V));
}

bool getVarint(const std::vector<uint8_t> &Buf, size_t &Pos, uint64_t &V) {
  V = 0;
  unsigned Shift = 0;
  while (Pos < Buf.size()) {
    uint8_t B = Buf[Pos++];
    if (Shift >= 63 && (B & 0x7f) > 1)
      return false; // overflow
    V |= static_cast<uint64_t>(B & 0x7f) << Shift;
    if (!(B & 0x80))
      return true;
    Shift += 7;
  }
  return false; // truncated
}

uint64_t zigzag(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) ^
         static_cast<uint64_t>(V >> 63);
}

int64_t unzigzag(uint64_t V) {
  return static_cast<int64_t>(V >> 1) ^ -static_cast<int64_t>(V & 1);
}

constexpr uint8_t Magic[4] = {'B', 'P', 'C', 'T'};
constexpr uint8_t Version = 1;

} // namespace

std::vector<uint8_t> bpcr::encodeTrace(const Trace &T) {
  std::vector<uint8_t> Buf;
  Buf.reserve(16 + T.size() / 2);
  for (uint8_t B : Magic)
    Buf.push_back(B);
  Buf.push_back(Version);
  putVarint(Buf, T.size());

  int32_t PrevId = 0;
  size_t I = 0;
  while (I < T.size()) {
    const BranchEvent &E = T[I];
    size_t Run = 1;
    while (I + Run < T.size() && T[I + Run] == E)
      ++Run;
    uint64_t Header =
        (zigzag(static_cast<int64_t>(E.BranchId) - PrevId) << 1) |
        (E.Taken ? 1 : 0);
    putVarint(Buf, Header);
    putVarint(Buf, Run - 1);
    PrevId = E.BranchId;
    I += Run;
  }
  return Buf;
}

bool bpcr::decodeTrace(const std::vector<uint8_t> &Buf, Trace &Out) {
  Out.clear();
  if (Buf.size() < 5)
    return false;
  for (int I = 0; I < 4; ++I)
    if (Buf[I] != Magic[I])
      return false;
  if (Buf[4] != Version)
    return false;

  size_t Pos = 5;
  uint64_t Count = 0;
  if (!getVarint(Buf, Pos, Count))
    return false;
  Out.reserve(Count);

  int64_t PrevId = 0;
  while (Out.size() < Count) {
    uint64_t Header = 0, RunMinus1 = 0;
    if (!getVarint(Buf, Pos, Header) || !getVarint(Buf, Pos, RunMinus1))
      return false;
    bool Taken = Header & 1;
    int64_t Id = PrevId + unzigzag(Header >> 1);
    if (Id < 0 || Id > INT32_MAX)
      return false;
    uint64_t Run = RunMinus1 + 1;
    if (Out.size() + Run > Count)
      return false;
    for (uint64_t K = 0; K < Run; ++K)
      Out.push_back({static_cast<int32_t>(Id), Taken});
    PrevId = Id;
  }
  return Pos == Buf.size();
}

bool bpcr::writeTraceFile(const std::string &Path, const Trace &T) {
  std::vector<uint8_t> Buf = encodeTrace(T);
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  size_t Written = std::fwrite(Buf.data(), 1, Buf.size(), F);
  bool Ok = Written == Buf.size();
  Ok &= std::fclose(F) == 0;
  return Ok;
}

bool bpcr::readTraceFile(const std::string &Path, Trace &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  std::vector<uint8_t> Buf;
  uint8_t Chunk[65536];
  size_t N;
  while ((N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Buf.insert(Buf.end(), Chunk, Chunk + N);
  std::fclose(F);
  return decodeTrace(Buf, Out);
}
