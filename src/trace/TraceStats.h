//===- trace/TraceStats.h - Per-branch trace statistics ---------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-branch execution and taken counts derived from a trace: the "static
/// branches / executed branches" rows of the paper's Table 1 and the
/// training data for the profile predictor.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_TRACE_TRACESTATS_H
#define BPCR_TRACE_TRACESTATS_H

#include "trace/ColumnarTrace.h"
#include "trace/Trace.h"

#include <cstdint>
#include <vector>

namespace bpcr {

/// Execution statistics for one static branch.
struct BranchStats {
  uint64_t Executions = 0;
  uint64_t TakenCount = 0;

  uint64_t notTakenCount() const { return Executions - TakenCount; }

  /// The majority direction; ties predict taken.
  bool majorityTaken() const { return 2 * TakenCount >= Executions; }

  /// Mispredictions when always predicting the majority direction.
  uint64_t profileMispredictions() const {
    uint64_t NT = notTakenCount();
    return TakenCount < NT ? TakenCount : NT;
  }
};

/// Aggregated per-branch statistics over a whole trace.
class TraceStats {
public:
  /// \param NumBranches number of static branch ids (upper bound on ids
  ///        appearing in traces fed to addTrace).
  explicit TraceStats(uint32_t NumBranches) : PerBranch(NumBranches) {}

  /// Accumulates every event of \p T.
  void addTrace(const Trace &T) {
    for (const BranchEvent &E : T)
      record(E.BranchId, E.Taken);
  }

  /// Columnar fast path: counts come straight from the finalized index
  /// (no per-event work at all). Identical totals to addTrace on
  /// CT.materialize().
  void addTrace(const ColumnarTrace &CT) {
    uint32_t N = CT.numBranches() < numBranches() ? CT.numBranches()
                                                  : numBranches();
    for (uint32_t Id = 0; Id < N; ++Id) {
      BranchColumn Col = CT.branch(Id);
      PerBranch[Id].Executions += Col.Executions;
      PerBranch[Id].TakenCount += Col.TakenCount;
    }
  }

  void record(int32_t BranchId, bool Taken) {
    BranchStats &S = PerBranch[static_cast<uint32_t>(BranchId)];
    ++S.Executions;
    if (Taken)
      ++S.TakenCount;
  }

  const BranchStats &branch(int32_t Id) const {
    return PerBranch[static_cast<uint32_t>(Id)];
  }

  uint32_t numBranches() const {
    return static_cast<uint32_t>(PerBranch.size());
  }

  /// Number of static branches that executed at least once.
  uint32_t executedBranches() const {
    uint32_t N = 0;
    for (const BranchStats &S : PerBranch)
      if (S.Executions > 0)
        ++N;
    return N;
  }

  /// Total dynamic branch executions.
  uint64_t totalExecutions() const {
    uint64_t N = 0;
    for (const BranchStats &S : PerBranch)
      N += S.Executions;
    return N;
  }

private:
  std::vector<BranchStats> PerBranch;
};

} // namespace bpcr

#endif // BPCR_TRACE_TRACESTATS_H
