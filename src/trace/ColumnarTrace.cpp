//===- trace/ColumnarTrace.cpp --------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/ColumnarTrace.h"

#include "obs/Metrics.h"

using namespace bpcr;

void ColumnarTrace::finalize(uint32_t NumBranches) {
  Counts.assign(NumBranches, 0);
  TakenCounts.assign(NumBranches, 0);
  WordOffsets.assign(NumBranches, 0);
  OutOfRangeEvents = 0;

  const size_t N = Ids.size();
  for (size_t I = 0; I < N; ++I) {
    int32_t Id = Ids[I];
    if (Id < 0 || static_cast<uint32_t>(Id) >= NumBranches)
      ++OutOfRangeEvents;
    else
      ++Counts[static_cast<uint32_t>(Id)];
  }

  // Word-aligned per-branch bitstream layout: branch b owns
  // ceil(Counts[b]/64) words starting at WordOffsets[b].
  size_t TotalWords = 0;
  for (uint32_t B = 0; B < NumBranches; ++B) {
    WordOffsets[B] = TotalWords;
    TotalWords += static_cast<size_t>((Counts[B] + 63) / 64);
  }
  BranchWords.assign(TotalWords, 0);

  // Scatter pass: walk the global columns once, depositing each branch's
  // direction bit at its next per-branch position.
  std::vector<uint64_t> Fill(NumBranches, 0);
  const BitstreamView Dir = Dirs.view();
  for (size_t I = 0; I < N; ++I) {
    int32_t Id = Ids[I];
    if (Id < 0 || static_cast<uint32_t>(Id) >= NumBranches)
      continue;
    uint32_t B = static_cast<uint32_t>(Id);
    uint64_t Pos = Fill[B]++;
    uint64_t Bit = Dir.bit(I) ? 1 : 0;
    TakenCounts[B] += Bit;
    BranchWords[WordOffsets[B] + static_cast<size_t>(Pos >> 6)] |=
        Bit << (Pos & 63);
  }
  Indexed = true;

  Registry &Obs = Registry::global();
  if (Obs.enabled()) {
    Obs.counter("trace.columnar.finalizes").inc();
    Obs.counter("trace.columnar.events").add(N);
    Obs.counter("trace.columnar.index_words").add(TotalWords);
    Obs.counter("trace.columnar.out_of_range_events").add(OutOfRangeEvents);
    if (N > 0)
      Obs.gauge("trace.columnar.bytes_per_event")
          .set(static_cast<double>(bytesUsed()) / static_cast<double>(N));
  }
}

size_t ColumnarTrace::bytesUsed() const {
  size_t Bytes = Ids.size() * sizeof(int32_t) +
                 Dirs.view().numWords() * sizeof(uint64_t);
  if (Indexed)
    Bytes += BranchWords.size() * sizeof(uint64_t) +
             Counts.size() * (2 * sizeof(uint64_t) + sizeof(size_t));
  return Bytes;
}

ColumnarTrace ColumnarTrace::fromEvents(const Trace &T) {
  ColumnarTrace CT;
  CT.reserve(T.size());
  for (const BranchEvent &E : T)
    CT.append(E.BranchId, E.Taken);
  return CT;
}

Trace ColumnarTrace::materialize() const {
  Trace T;
  T.reserve(Ids.size());
  const BitstreamView Dir = Dirs.view();
  for (size_t I = 0, E = Ids.size(); I != E; ++I)
    T.push_back({Ids[I], Dir.bit(I)});
  return T;
}
