//===- predict/DynamicPredictors.cpp --------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "predict/DynamicPredictors.h"

#include <cassert>

using namespace bpcr;

Predictor::~Predictor() = default;

TwoLevelPredictor::TwoLevelPredictor(TwoLevelConfig Cfg) : Cfg(Cfg) {
  assert(Cfg.HistoryBits >= 1 && Cfg.HistoryBits <= 20 &&
         "history width out of range");
  reset();
}

void TwoLevelPredictor::reset() {
  uint32_t HistCount = 1;
  if (Cfg.HistoryScope != Scope::Global)
    HistCount = Cfg.HistoryEntries;
  Histories.assign(HistCount, 0);

  FixedTables.clear();
  PerBranchTables.clear();
  uint32_t TableCount = 0;
  if (Cfg.PatternScope == Scope::Global)
    TableCount = 1;
  else if (Cfg.PatternScope == Scope::Set)
    TableCount = Cfg.PatternSets;
  FixedTables.assign(
      TableCount, std::vector<SaturatingCounter>(
                      1U << Cfg.HistoryBits, SaturatingCounter(Cfg.CounterBits)));
}

uint32_t TwoLevelPredictor::historyIndex(int32_t BranchId) const {
  if (Cfg.HistoryScope == Scope::Global)
    return 0;
  // Set and PerBranch scopes both index a finite table; PerBranch models an
  // ideally sized table, so collisions only matter for Set.
  return static_cast<uint32_t>(BranchId) % Cfg.HistoryEntries;
}

uint32_t TwoLevelPredictor::patternTableIndex(int32_t BranchId) const {
  if (Cfg.PatternScope == Scope::Global)
    return 0;
  return static_cast<uint32_t>(BranchId) % Cfg.PatternSets;
}

SaturatingCounter &TwoLevelPredictor::counterFor(int32_t BranchId) {
  uint32_t Hist = Histories[historyIndex(BranchId)];
  if (Cfg.PatternScope == Scope::PerBranch) {
    auto It = PerBranchTables.find(BranchId);
    if (It == PerBranchTables.end())
      It = PerBranchTables
               .emplace(BranchId,
                        std::vector<SaturatingCounter>(
                            1U << Cfg.HistoryBits,
                            SaturatingCounter(Cfg.CounterBits)))
               .first;
    return It->second[Hist];
  }
  return FixedTables[patternTableIndex(BranchId)][Hist];
}

bool TwoLevelPredictor::predict(int32_t BranchId) {
  return counterFor(BranchId).predictTaken();
}

void TwoLevelPredictor::update(int32_t BranchId, bool Taken) {
  counterFor(BranchId).update(Taken);
  uint32_t &H = Histories[historyIndex(BranchId)];
  H = ((H << 1) | (Taken ? 1U : 0U)) & ((1U << Cfg.HistoryBits) - 1U);
}

std::string TwoLevelPredictor::name() const {
  auto ScopeChar = [](Scope S) {
    switch (S) {
    case Scope::Global:
      return 'G';
    case Scope::Set:
      return 'S';
    case Scope::PerBranch:
      return 'P';
    }
    return '?';
  };
  std::string N = "two level ";
  N += ScopeChar(Cfg.HistoryScope);
  N += 'A';
  N += (Cfg.PatternScope == Scope::Global
            ? 'g'
            : (Cfg.PatternScope == Scope::Set ? 's' : 'p'));
  N += " h" + std::to_string(Cfg.HistoryBits);
  return N;
}
