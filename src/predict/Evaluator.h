//===- predict/Evaluator.h - Prediction evaluation driver -------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives predictors over traces and aggregates misprediction statistics,
/// total and per branch. Semi-static predictors are trained and evaluated
/// on the same trace by default, matching the paper's methodology; the
/// dataset-sensitivity ablation trains on one input and evaluates on
/// another (Fisher/Freudenberger style).
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_PREDICT_EVALUATOR_H
#define BPCR_PREDICT_EVALUATOR_H

#include "predict/Predictor.h"
#include "support/Statistics.h"
#include "trace/Trace.h"

#include <vector>

namespace bpcr {

class ColumnarTrace;

/// Streams \p T through \p P (predict, compare, update per event).
PredictionStats evaluatePredictor(Predictor &P, const Trace &T);

/// Columnar overload: same event order from ids() plus packed directions.
PredictionStats evaluatePredictor(Predictor &P, const ColumnarTrace &CT);

/// Like evaluatePredictor but also splits the statistics per branch.
/// \param NumBranches upper bound on branch ids in \p T.
std::vector<PredictionStats>
evaluatePredictorPerBranch(Predictor &P, const Trace &T, uint32_t NumBranches);

/// Columnar overload of evaluatePredictorPerBranch.
std::vector<PredictionStats>
evaluatePredictorPerBranch(Predictor &P, const ColumnarTrace &CT,
                           uint32_t NumBranches);

/// Per-branch outcome detail of one predictor run: executions, taken
/// outcomes and mispredictions. `bpcr explain` shows this as the dynamic
/// comparison column next to the semi-static strategies.
struct BranchEvalStats {
  uint64_t Executions = 0;
  uint64_t Taken = 0;
  uint64_t Mispredictions = 0;

  double missRatePercent() const {
    return Executions ? 100.0 * static_cast<double>(Mispredictions) /
                            static_cast<double>(Executions)
                      : 0.0;
  }
  double takenPercent() const {
    return Executions ? 100.0 * static_cast<double>(Taken) /
                            static_cast<double>(Executions)
                      : 0.0;
  }
};

/// Like evaluatePredictorPerBranch but also records taken bias per branch.
std::vector<BranchEvalStats>
evaluatePredictorPerBranchDetailed(Predictor &P, const Trace &T,
                                   uint32_t NumBranches);

/// Trains a semi-static predictor on \p TrainTrace, resets its history
/// registers, then evaluates on \p TestTrace.
PredictionStats evaluateTrained(TrainablePredictor &P, const Trace &TrainTrace,
                                const Trace &TestTrace);

/// Self-prediction: train and evaluate on the same trace (the paper's
/// default methodology).
inline PredictionStats evaluateSelfTrained(TrainablePredictor &P,
                                           const Trace &T) {
  return evaluateTrained(P, T, T);
}

} // namespace bpcr

#endif // BPCR_PREDICT_EVALUATOR_H
