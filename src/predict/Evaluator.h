//===- predict/Evaluator.h - Prediction evaluation driver -------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives predictors over traces and aggregates misprediction statistics,
/// total and per branch. Semi-static predictors are trained and evaluated
/// on the same trace by default, matching the paper's methodology; the
/// dataset-sensitivity ablation trains on one input and evaluates on
/// another (Fisher/Freudenberger style).
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_PREDICT_EVALUATOR_H
#define BPCR_PREDICT_EVALUATOR_H

#include "predict/Predictor.h"
#include "support/Statistics.h"
#include "trace/Trace.h"

#include <vector>

namespace bpcr {

/// Streams \p T through \p P (predict, compare, update per event).
PredictionStats evaluatePredictor(Predictor &P, const Trace &T);

/// Like evaluatePredictor but also splits the statistics per branch.
/// \param NumBranches upper bound on branch ids in \p T.
std::vector<PredictionStats>
evaluatePredictorPerBranch(Predictor &P, const Trace &T, uint32_t NumBranches);

/// Trains a semi-static predictor on \p TrainTrace, resets its history
/// registers, then evaluates on \p TestTrace.
PredictionStats evaluateTrained(TrainablePredictor &P, const Trace &TrainTrace,
                                const Trace &TestTrace);

/// Self-prediction: train and evaluate on the same trace (the paper's
/// default methodology).
inline PredictionStats evaluateSelfTrained(TrainablePredictor &P,
                                           const Trace &T) {
  return evaluateTrained(P, T, T);
}

} // namespace bpcr

#endif // BPCR_PREDICT_EVALUATOR_H
