//===- predict/DynamicPredictors.h - Hardware-style predictors --*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic prediction strategies the paper compares against (sec. 2.3):
/// last-direction, n-bit saturating counters (Smith 1981) and two-level
/// adaptive predictors in all nine Yeh/Patt combinations of history-register
/// and pattern-table scope (global / per-set / per-branch).
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_PREDICT_DYNAMICPREDICTORS_H
#define BPCR_PREDICT_DYNAMICPREDICTORS_H

#include "predict/Predictor.h"
#include "support/SaturatingCounter.h"

#include <unordered_map>
#include <vector>

namespace bpcr {

/// "Predict that a branch will take the same direction as on its last
/// execution" (Smith 1981). Ideal (per-branch, no aliasing) table.
class LastDirectionPredictor : public Predictor {
public:
  void reset() override { Last.clear(); }

  bool predict(int32_t BranchId) override {
    auto It = Last.find(BranchId);
    return It == Last.end() ? true : It->second;
  }

  void update(int32_t BranchId, bool Taken) override {
    Last[BranchId] = Taken;
  }

  std::string name() const override { return "last direction"; }

private:
  std::unordered_map<int32_t, bool> Last;
};

/// Per-branch n-bit saturating counter (Smith 1981); 2 bits by default, the
/// width Smith found best.
class CounterPredictor : public Predictor {
public:
  explicit CounterPredictor(unsigned Bits = 2) : Bits(Bits) {}

  void reset() override { Counters.clear(); }

  bool predict(int32_t BranchId) override {
    return counter(BranchId).predictTaken();
  }

  void update(int32_t BranchId, bool Taken) override {
    counter(BranchId).update(Taken);
  }

  std::string name() const override {
    return std::to_string(Bits) + " bit counter";
  }

private:
  SaturatingCounter &counter(int32_t Id) {
    auto It = Counters.find(Id);
    if (It == Counters.end())
      It = Counters.emplace(Id, SaturatingCounter(Bits)).first;
    return It->second;
  }

  unsigned Bits;
  std::unordered_map<int32_t, SaturatingCounter> Counters;
};

/// Scope of a two-level predictor resource (Yeh/Patt 1993 terminology:
/// G = one global instance, S = per-set, P = per-branch address).
enum class Scope : uint8_t { Global, Set, PerBranch };

/// Configuration of a two-level adaptive predictor.
struct TwoLevelConfig {
  Scope HistoryScope = Scope::PerBranch;
  Scope PatternScope = Scope::Global;
  /// History register width; the pattern tables have 2^HistoryBits entries.
  unsigned HistoryBits = 9;
  /// Rows in the first-level history table (Set/PerBranch scopes index it
  /// with BranchId modulo this, modelling the paper's 1K-entry table).
  uint32_t HistoryEntries = 1024;
  /// Number of pattern tables for Scope::Set.
  uint32_t PatternSets = 16;
  unsigned CounterBits = 2;

  /// The paper's "two level 4K bit" configuration: a 1K-entry 9-bit history
  /// register table and a 1K-entry pattern table with 2-bit counters.
  static TwoLevelConfig paperDefault() { return TwoLevelConfig(); }
};

/// Two-level adaptive predictor (Yeh/Patt 1992/1993, Pan/So/Rahmeh 1992).
class TwoLevelPredictor : public Predictor {
public:
  explicit TwoLevelPredictor(TwoLevelConfig Cfg = TwoLevelConfig());

  void reset() override;
  bool predict(int32_t BranchId) override;
  void update(int32_t BranchId, bool Taken) override;
  std::string name() const override;

  const TwoLevelConfig &config() const { return Cfg; }

private:
  uint32_t historyIndex(int32_t BranchId) const;
  uint32_t patternTableIndex(int32_t BranchId) const;
  SaturatingCounter &counterFor(int32_t BranchId);

  TwoLevelConfig Cfg;
  /// First level: history registers (index per HistoryScope).
  std::vector<uint32_t> Histories;
  /// Second level: pattern tables of counters. Tables for Global/Set live in
  /// FixedTables; PerBranch tables are allocated on demand.
  std::vector<std::vector<SaturatingCounter>> FixedTables;
  std::unordered_map<int32_t, std::vector<SaturatingCounter>> PerBranchTables;
};

} // namespace bpcr

#endif // BPCR_PREDICT_DYNAMICPREDICTORS_H
