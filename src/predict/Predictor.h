//===- predict/Predictor.h - Branch predictor interface ---------*- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common predictor interface. A predictor answers predict() before
/// each branch and observes the outcome via update(). Dynamic predictors
/// adapt during evaluation; semi-static predictors additionally implement
/// TrainablePredictor and fix their decision tables from a training trace —
/// at evaluation time only their history registers move, which is exactly
/// the information code replication later encodes into the program counter.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_PREDICT_PREDICTOR_H
#define BPCR_PREDICT_PREDICTOR_H

#include "support/Statistics.h"
#include "trace/Trace.h"

#include <cstdint>
#include <string>

namespace bpcr {

/// Streaming branch predictor.
class Predictor {
public:
  virtual ~Predictor();

  /// Forgets all adaptive state (not trained tables).
  virtual void reset() = 0;

  /// Predicted direction for the next execution of \p BranchId.
  virtual bool predict(int32_t BranchId) = 0;

  /// Informs the predictor of the actual outcome.
  virtual void update(int32_t BranchId, bool Taken) = 0;

  /// Display name used in the result tables.
  virtual std::string name() const = 0;
};

/// A predictor whose tables are fixed from a profiling run.
class TrainablePredictor : public Predictor {
public:
  /// Builds the prediction tables from \p T. May be called once.
  virtual void train(const Trace &T) = 0;
};

} // namespace bpcr

#endif // BPCR_PREDICT_PREDICTOR_H
