//===- predict/SemiStaticPredictors.h - Profile-based predictors *- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's semi-static strategies (sec. 3): per-branch profile majority;
/// the "correlated branch strategy" (a global history register, meaning a
/// branch depends on other branches); the "loop branch strategy" (a local
/// history register per branch, meaning a branch depends on its own previous
/// executions); and their per-branch combination "loop-correlation".
///
/// All decision tables are fixed by train(); evaluation only advances the
/// history registers. That is precisely the information code replication
/// later materializes in the program counter.
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_PREDICT_SEMISTATICPREDICTORS_H
#define BPCR_PREDICT_SEMISTATICPREDICTORS_H

#include "predict/Predictor.h"
#include "support/BitHistory.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace bpcr {

/// Taken/not-taken counts for one table entry.
struct DirCounts {
  uint64_t Taken = 0;
  uint64_t NotTaken = 0;

  void record(bool T) { (T ? Taken : NotTaken) += 1; }
  uint64_t total() const { return Taken + NotTaken; }
  bool majorityTaken() const { return Taken >= NotTaken; }
  /// Executions mispredicted when predicting the majority direction.
  uint64_t minority() const { return Taken < NotTaken ? Taken : NotTaken; }
};

/// "Predict the most frequent direction" per branch.
class ProfilePredictor : public TrainablePredictor {
public:
  void train(const Trace &T) override;
  void reset() override {}
  bool predict(int32_t BranchId) override;
  void update(int32_t BranchId, bool Taken) override;
  std::string name() const override { return "profile"; }

  /// Training-time counts (used by strategy selection and Table 1 extras).
  const std::unordered_map<int32_t, DirCounts> &counts() const {
    return Counts;
  }

private:
  std::unordered_map<int32_t, DirCounts> Counts;
};

/// "bit correlation": one global k-bit history register shared by all
/// branches, with an unbounded per-branch pattern table (the paper: "we are
/// not restricted by the size of the history tables. So we used a pattern
/// table for each branch").
class CorrelationPredictor : public TrainablePredictor {
public:
  explicit CorrelationPredictor(unsigned HistoryBits = 1)
      : HistoryBits(HistoryBits), History(HistoryBits) {}

  void train(const Trace &T) override;
  void reset() override { History.clear(); }
  bool predict(int32_t BranchId) override;
  void update(int32_t BranchId, bool Taken) override;
  std::string name() const override {
    return std::to_string(HistoryBits) + " bit correlation";
  }

  unsigned historyBits() const { return HistoryBits; }

private:
  /// Key: (BranchId << HistoryBits) | pattern.
  uint64_t key(int32_t BranchId, uint32_t Pattern) const {
    return (static_cast<uint64_t>(static_cast<uint32_t>(BranchId))
            << HistoryBits) |
           Pattern;
  }

  unsigned HistoryBits;
  BitHistory History;
  std::unordered_map<uint64_t, DirCounts> Table;
  std::unordered_map<int32_t, DirCounts> Fallback;
};

/// "bit loop": a k-bit history register per branch, per-branch pattern
/// table. Branches using this scheme are the paper's "loop branches".
class LoopHistoryPredictor : public TrainablePredictor {
public:
  explicit LoopHistoryPredictor(unsigned HistoryBits = 9)
      : HistoryBits(HistoryBits) {}

  void train(const Trace &T) override;
  void reset() override { Histories.clear(); }
  bool predict(int32_t BranchId) override;
  void update(int32_t BranchId, bool Taken) override;
  std::string name() const override {
    return std::to_string(HistoryBits) + " bit loop";
  }

  unsigned historyBits() const { return HistoryBits; }

private:
  uint64_t key(int32_t BranchId, uint32_t Pattern) const {
    return (static_cast<uint64_t>(static_cast<uint32_t>(BranchId))
            << HistoryBits) |
           Pattern;
  }
  uint32_t &history(int32_t BranchId);

  unsigned HistoryBits;
  std::unordered_map<int32_t, uint32_t> Histories;
  std::unordered_map<uint64_t, DirCounts> Table;
  std::unordered_map<int32_t, DirCounts> Fallback;
};

/// "loop-correlation": per branch, whichever of 1-bit correlation and 9-bit
/// loop mispredicts less on the training trace (paper Table 1, last
/// strategy row).
class LoopCorrelationPredictor : public TrainablePredictor {
public:
  LoopCorrelationPredictor(unsigned CorrelationBits = 1,
                           unsigned LoopBits = 9);

  void train(const Trace &T) override;
  void reset() override;
  bool predict(int32_t BranchId) override;
  void update(int32_t BranchId, bool Taken) override;
  std::string name() const override { return "loop-correlation"; }

  /// True when \p BranchId was assigned the loop (local-history) scheme.
  bool usesLoopScheme(int32_t BranchId) const;

  /// Number of branches whose training mispredictions under this strategy
  /// are strictly lower than under profile prediction: the paper's
  /// "improved branches" row.
  uint32_t improvedBranchCount() const { return ImprovedBranches; }

private:
  CorrelationPredictor Corr;
  LoopHistoryPredictor Loop;
  /// BranchId -> true when the loop scheme was selected.
  std::unordered_map<int32_t, bool> UseLoop;
  uint32_t ImprovedBranches = 0;
};

} // namespace bpcr

#endif // BPCR_PREDICT_SEMISTATICPREDICTORS_H
