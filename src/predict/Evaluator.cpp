//===- predict/Evaluator.cpp ----------------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "predict/Evaluator.h"

#include "trace/ColumnarTrace.h"

using namespace bpcr;

PredictionStats bpcr::evaluatePredictor(Predictor &P, const Trace &T) {
  PredictionStats S;
  for (const BranchEvent &E : T) {
    S.record(P.predict(E.BranchId) == E.Taken);
    P.update(E.BranchId, E.Taken);
  }
  return S;
}

PredictionStats bpcr::evaluatePredictor(Predictor &P,
                                        const ColumnarTrace &CT) {
  PredictionStats S;
  const int32_t *Ids = CT.ids().data();
  const uint64_t *Dirs = CT.directions().data();
  size_t N = CT.size();
  for (size_t I = 0; I < N; ++I) {
    bool Taken = (Dirs[I >> 6] >> (I & 63)) & 1;
    S.record(P.predict(Ids[I]) == Taken);
    P.update(Ids[I], Taken);
  }
  return S;
}

std::vector<PredictionStats>
bpcr::evaluatePredictorPerBranch(Predictor &P, const Trace &T,
                                 uint32_t NumBranches) {
  std::vector<PredictionStats> Per(NumBranches);
  for (const BranchEvent &E : T) {
    bool Correct = P.predict(E.BranchId) == E.Taken;
    P.update(E.BranchId, E.Taken);
    if (static_cast<uint32_t>(E.BranchId) < NumBranches)
      Per[E.BranchId].record(Correct);
  }
  return Per;
}

std::vector<PredictionStats>
bpcr::evaluatePredictorPerBranch(Predictor &P, const ColumnarTrace &CT,
                                 uint32_t NumBranches) {
  std::vector<PredictionStats> Per(NumBranches);
  const int32_t *Ids = CT.ids().data();
  const uint64_t *Dirs = CT.directions().data();
  size_t N = CT.size();
  for (size_t I = 0; I < N; ++I) {
    bool Taken = (Dirs[I >> 6] >> (I & 63)) & 1;
    bool Correct = P.predict(Ids[I]) == Taken;
    P.update(Ids[I], Taken);
    if (static_cast<uint32_t>(Ids[I]) < NumBranches)
      Per[Ids[I]].record(Correct);
  }
  return Per;
}

std::vector<BranchEvalStats>
bpcr::evaluatePredictorPerBranchDetailed(Predictor &P, const Trace &T,
                                         uint32_t NumBranches) {
  std::vector<BranchEvalStats> Per(NumBranches);
  for (const BranchEvent &E : T) {
    bool Correct = P.predict(E.BranchId) == E.Taken;
    P.update(E.BranchId, E.Taken);
    if (static_cast<uint32_t>(E.BranchId) >= NumBranches)
      continue;
    BranchEvalStats &S = Per[E.BranchId];
    ++S.Executions;
    S.Taken += E.Taken;
    S.Mispredictions += !Correct;
  }
  return Per;
}

PredictionStats bpcr::evaluateTrained(TrainablePredictor &P,
                                      const Trace &TrainTrace,
                                      const Trace &TestTrace) {
  P.train(TrainTrace);
  P.reset();
  return evaluatePredictor(P, TestTrace);
}
