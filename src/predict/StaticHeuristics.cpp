//===- predict/StaticHeuristics.cpp ---------------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "predict/StaticHeuristics.h"

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"

using namespace bpcr;

namespace {

/// Applies \p Fn to every conditional branch of the module, recording the
/// produced prediction by BranchId.
template <typename Callable>
StaticPredictions forEachBranch(const Module &M, Callable Fn) {
  StaticPredictions Out(M.conditionalBranchCount(), Prediction::Unknown);
  for (const Function &F : M.Functions)
    for (uint32_t BI = 0; BI < F.Blocks.size(); ++BI) {
      const BasicBlock &BB = F.Blocks[BI];
      for (const Instruction &I : BB.Insts) {
        if (!I.isConditionalBranch())
          continue;
        assert(I.BranchId >= 0 && "branch ids not assigned");
        if (static_cast<size_t>(I.BranchId) >= Out.size())
          Out.resize(I.BranchId + 1, Prediction::Unknown);
        Out[I.BranchId] = Fn(F, BI, I);
      }
    }
  return Out;
}

/// Finds the comparison defining the branch condition register within the
/// same block, or null.
const Instruction *definingCompare(const BasicBlock &BB,
                                   const Instruction &Br) {
  if (!Br.A.isReg())
    return nullptr;
  Reg Cond = Br.A.asReg();
  for (auto It = BB.Insts.rbegin(); It != BB.Insts.rend(); ++It) {
    const Instruction &I = *It;
    if (&I == &Br)
      continue;
    if (writesRegister(I.Op) && I.Dst == Cond)
      return isCompare(I.Op) ? &I : nullptr;
  }
  return nullptr;
}

bool blockContains(const BasicBlock &BB, Opcode Op) {
  for (const Instruction &I : BB.Insts)
    if (I.Op == Op)
      return true;
  return false;
}

bool blockReturns(const BasicBlock &BB) {
  return BB.isComplete() && BB.terminator().Op == Opcode::Ret;
}

/// True when a register operand of the branch's compare is read in \p BB.
bool blockUsesOperands(const BasicBlock &BB, const Instruction *Cmp) {
  if (!Cmp)
    return false;
  auto Uses = [&BB](Reg R) {
    for (const Instruction &I : BB.Insts) {
      auto Reads = [R](const Operand &O) { return O.isReg() && O.asReg() == R; };
      if (Reads(I.A) || Reads(I.B) || Reads(I.C))
        return true;
      for (const Operand &Arg : I.Args)
        if (Reads(Arg))
          return true;
    }
    return false;
  };
  if (Cmp->A.isReg() && Uses(Cmp->A.asReg()))
    return true;
  if (Cmp->B.isReg() && Uses(Cmp->B.asReg()))
    return true;
  return false;
}

} // namespace

StaticPredictions bpcr::predictAlwaysTaken(const Module &M) {
  return forEachBranch(M, [](const Function &, uint32_t, const Instruction &) {
    return Prediction::Taken;
  });
}

StaticPredictions bpcr::predictBackwardTaken(const Module &M) {
  return forEachBranch(
      M, [](const Function &, uint32_t BI, const Instruction &I) {
        return (I.TrueTarget <= BI) ? Prediction::Taken
                                    : Prediction::NotTaken;
      });
}

StaticPredictions bpcr::predictOpcode(const Module &M) {
  return forEachBranch(
      M, [](const Function &F, uint32_t BI, const Instruction &Br) {
        const Instruction *Cmp = definingCompare(F.Blocks[BI], Br);
        if (!Cmp)
          return Prediction::Taken;
        switch (Cmp->Op) {
        case Opcode::CmpEq:
          return Prediction::NotTaken; // equality rarely holds
        case Opcode::CmpNe:
          return Prediction::Taken;
        case Opcode::CmpLt:
        case Opcode::CmpLe:
          // Tests against zero are usually error/edge checks.
          if (Cmp->B.isImm() && Cmp->B.Val == 0)
            return Prediction::NotTaken;
          return Prediction::Taken;
        default:
          return Prediction::Taken;
        }
      });
}

StaticPredictions bpcr::predictBallLarus(const Module &M) {
  StaticPredictions Out(M.conditionalBranchCount(), Prediction::Unknown);

  for (const Function &F : M.Functions) {
    CFG G(F);
    Dominators D(G);
    LoopInfo LI(G, D);

    for (uint32_t BI = 0; BI < F.Blocks.size(); ++BI) {
      const BasicBlock &BB = F.Blocks[BI];
      if (!BB.isComplete())
        continue;
      const Instruction &Br = BB.terminator();
      if (!Br.isConditionalBranch())
        continue;
      assert(Br.BranchId >= 0 && "branch ids not assigned");
      if (static_cast<size_t>(Br.BranchId) >= Out.size())
        Out.resize(Br.BranchId + 1, Prediction::Unknown);

      const BasicBlock &TB = F.Blocks[Br.TrueTarget];
      const BasicBlock &FB = F.Blocks[Br.FalseTarget];
      const Instruction *Cmp = definingCompare(BB, Br);

      Prediction P = Prediction::Unknown;

      // Loop: predict that the loop branch is taken (stays in / re-enters
      // the loop). Applied first: Ball-Larus treat loop branches with the
      // loop heuristic and use the program-based heuristics for the rest.
      {
        int32_t L = LI.innermostLoop(BI);
        if (L >= 0) {
          const Loop &Lp = LI.loops()[static_cast<size_t>(L)];
          bool TIn = Lp.contains(Br.TrueTarget);
          bool FIn = Lp.contains(Br.FalseTarget);
          if (TIn != FIn)
            P = TIn ? Prediction::Taken : Prediction::NotTaken;
        }
      }

      // Point: pointer comparisons — equality predicted false.
      if (Cmp && Cmp->PtrCmp) {
        if (Cmp->Op == Opcode::CmpEq)
          P = Prediction::NotTaken;
        else if (Cmp->Op == Opcode::CmpNe)
          P = Prediction::Taken;
      }

      // Call: avoid the successor that calls a subroutine (unless it also
      // appears on the other side).
      if (P == Prediction::Unknown) {
        bool TCall = blockContains(TB, Opcode::Call);
        bool FCall = blockContains(FB, Opcode::Call);
        if (TCall != FCall)
          P = TCall ? Prediction::NotTaken : Prediction::Taken;
      }

      // Opcode: comparisons against zero / equality predicted false.
      if (P == Prediction::Unknown && Cmp) {
        if (Cmp->Op == Opcode::CmpEq)
          P = Prediction::NotTaken;
        else if (Cmp->Op == Opcode::CmpNe)
          P = Prediction::Taken;
        else if ((Cmp->Op == Opcode::CmpLt || Cmp->Op == Opcode::CmpLe) &&
                 Cmp->B.isImm() && Cmp->B.Val == 0)
          P = Prediction::NotTaken;
      }

      // Return: avoid the successor that returns.
      if (P == Prediction::Unknown) {
        bool TRet = blockReturns(TB);
        bool FRet = blockReturns(FB);
        if (TRet != FRet)
          P = TRet ? Prediction::NotTaken : Prediction::Taken;
      }

      // Store: avoid the successor that stores.
      if (P == Prediction::Unknown) {
        bool TStore = blockContains(TB, Opcode::Store);
        bool FStore = blockContains(FB, Opcode::Store);
        if (TStore != FStore)
          P = TStore ? Prediction::NotTaken : Prediction::Taken;
      }

      // Guard: branch toward the block that uses the branch operands.
      if (P == Prediction::Unknown && Cmp) {
        bool TUse = blockUsesOperands(TB, Cmp);
        bool FUse = blockUsesOperands(FB, Cmp);
        if (TUse != FUse)
          P = TUse ? Prediction::Taken : Prediction::NotTaken;
      }

      Out[Br.BranchId] = (P == Prediction::Unknown) ? Prediction::Taken : P;
    }
  }
  return Out;
}

PredictionStats
bpcr::evaluateStaticPredictions(const StaticPredictions &P, const Trace &T) {
  PredictionStats S;
  for (const BranchEvent &E : T) {
    Prediction Pred = Prediction::Taken;
    if (static_cast<size_t>(E.BranchId) < P.size() &&
        P[E.BranchId] != Prediction::Unknown)
      Pred = P[E.BranchId];
    S.record((Pred == Prediction::Taken) == E.Taken);
  }
  return S;
}
