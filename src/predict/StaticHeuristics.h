//===- predict/StaticHeuristics.h - Compile-time-only prediction *- C++ -*-===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static branch prediction baselines (paper sec. 2.1): Smith's simple
/// heuristics and the Ball-Larus program-based heuristic chain. Loop
/// branches are decided by the loop heuristic first (as in BL93); the
/// remaining branches go through the lexicographic order the paper reports
/// as most successful (Point, Call, Opcode, Return, Store, Guard).
///
//===----------------------------------------------------------------------===//

#ifndef BPCR_PREDICT_STATICHEURISTICS_H
#define BPCR_PREDICT_STATICHEURISTICS_H

#include "ir/Module.h"
#include "support/Statistics.h"
#include "trace/Trace.h"

#include <vector>

namespace bpcr {

/// Per-branch static predictions, indexed by BranchId (ids must be
/// assigned). Unknown entries are evaluated as predict-taken.
using StaticPredictions = std::vector<Prediction>;

/// Smith: predict that every branch is taken.
StaticPredictions predictAlwaysTaken(const Module &M);

/// Smith: predict that backward branches (to a lower block index within the
/// function, the IR's layout order) are taken, forward branches not taken.
StaticPredictions predictBackwardTaken(const Module &M);

/// Smith: decide the direction from the comparison opcode feeding the
/// branch (tests against zero / equality predict not taken).
StaticPredictions predictOpcode(const Module &M);

/// Ball-Larus 1993 heuristic chain in the paper's order.
StaticPredictions predictBallLarus(const Module &M);

/// Evaluates fixed per-branch predictions over a trace.
PredictionStats evaluateStaticPredictions(const StaticPredictions &P,
                                          const Trace &T);

} // namespace bpcr

#endif // BPCR_PREDICT_STATICHEURISTICS_H
