//===- predict/SemiStaticPredictors.cpp -----------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//

#include "predict/SemiStaticPredictors.h"

using namespace bpcr;

// -- ProfilePredictor --------------------------------------------------------

void ProfilePredictor::train(const Trace &T) {
  for (const BranchEvent &E : T)
    Counts[E.BranchId].record(E.Taken);
}

bool ProfilePredictor::predict(int32_t BranchId) {
  auto It = Counts.find(BranchId);
  return It == Counts.end() ? true : It->second.majorityTaken();
}

void ProfilePredictor::update(int32_t, bool) {}

// -- CorrelationPredictor ----------------------------------------------------

void CorrelationPredictor::train(const Trace &T) {
  BitHistory H(HistoryBits);
  for (const BranchEvent &E : T) {
    Table[key(E.BranchId, H.value())].record(E.Taken);
    Fallback[E.BranchId].record(E.Taken);
    H.push(E.Taken);
  }
}

bool CorrelationPredictor::predict(int32_t BranchId) {
  auto It = Table.find(key(BranchId, History.value()));
  if (It != Table.end() && It->second.total() > 0)
    return It->second.majorityTaken();
  auto FIt = Fallback.find(BranchId);
  return FIt == Fallback.end() ? true : FIt->second.majorityTaken();
}

void CorrelationPredictor::update(int32_t, bool Taken) {
  History.push(Taken);
}

// -- LoopHistoryPredictor ----------------------------------------------------

uint32_t &LoopHistoryPredictor::history(int32_t BranchId) {
  return Histories[BranchId];
}

void LoopHistoryPredictor::train(const Trace &T) {
  std::unordered_map<int32_t, uint32_t> H;
  uint32_t Mask = (HistoryBits >= 32) ? ~0U : ((1U << HistoryBits) - 1U);
  for (const BranchEvent &E : T) {
    uint32_t &Pattern = H[E.BranchId];
    Table[key(E.BranchId, Pattern)].record(E.Taken);
    Fallback[E.BranchId].record(E.Taken);
    Pattern = ((Pattern << 1) | (E.Taken ? 1U : 0U)) & Mask;
  }
}

bool LoopHistoryPredictor::predict(int32_t BranchId) {
  auto It = Table.find(key(BranchId, history(BranchId)));
  if (It != Table.end() && It->second.total() > 0)
    return It->second.majorityTaken();
  auto FIt = Fallback.find(BranchId);
  return FIt == Fallback.end() ? true : FIt->second.majorityTaken();
}

void LoopHistoryPredictor::update(int32_t BranchId, bool Taken) {
  uint32_t Mask = (HistoryBits >= 32) ? ~0U : ((1U << HistoryBits) - 1U);
  uint32_t &Pattern = history(BranchId);
  Pattern = ((Pattern << 1) | (Taken ? 1U : 0U)) & Mask;
}

// -- LoopCorrelationPredictor ------------------------------------------------

LoopCorrelationPredictor::LoopCorrelationPredictor(unsigned CorrelationBits,
                                                   unsigned LoopBits)
    : Corr(CorrelationBits), Loop(LoopBits) {}

void LoopCorrelationPredictor::train(const Trace &T) {
  Corr.train(T);
  Loop.train(T);

  // Second pass: count per-branch mispredictions of each trained scheme and
  // of profile, then pick per branch.
  std::unordered_map<int32_t, uint64_t> CorrMiss, LoopMiss, ProfMiss;
  std::unordered_map<int32_t, DirCounts> Counts;
  for (const BranchEvent &E : T)
    Counts[E.BranchId].record(E.Taken);

  Corr.reset();
  Loop.reset();
  for (const BranchEvent &E : T) {
    if (Corr.predict(E.BranchId) != E.Taken)
      ++CorrMiss[E.BranchId];
    if (Loop.predict(E.BranchId) != E.Taken)
      ++LoopMiss[E.BranchId];
    Corr.update(E.BranchId, E.Taken);
    Loop.update(E.BranchId, E.Taken);
  }

  ImprovedBranches = 0;
  for (const auto &[Id, C] : Counts) {
    uint64_t CM = CorrMiss.count(Id) ? CorrMiss[Id] : 0;
    uint64_t LM = LoopMiss.count(Id) ? LoopMiss[Id] : 0;
    UseLoop[Id] = LM <= CM;
    uint64_t Best = LM <= CM ? LM : CM;
    if (Best < C.minority())
      ++ImprovedBranches;
  }

  Corr.reset();
  Loop.reset();
}

void LoopCorrelationPredictor::reset() {
  Corr.reset();
  Loop.reset();
}

bool LoopCorrelationPredictor::usesLoopScheme(int32_t BranchId) const {
  auto It = UseLoop.find(BranchId);
  return It == UseLoop.end() ? true : It->second;
}

bool LoopCorrelationPredictor::predict(int32_t BranchId) {
  return usesLoopScheme(BranchId) ? Loop.predict(BranchId)
                                  : Corr.predict(BranchId);
}

void LoopCorrelationPredictor::update(int32_t BranchId, bool Taken) {
  // Both history registers advance; only the chosen one's prediction is
  // consulted for this branch.
  Corr.update(BranchId, Taken);
  Loop.update(BranchId, Taken);
}
