//===- tools/bpcr.cpp - Command line driver -------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The library's command-line face, mirroring the paper's tooling (a tracer
// that writes branch traces plus an analyzer that turns them into tables):
//
//   bpcr list
//   bpcr dump <workload> [--seed N]
//   bpcr trace <workload> [--seed N] [--events N] [-o trace.bpct]
//   bpcr analyze <workload> [--seed N] [--events N]
//   bpcr replicate <workload> [--seed N] [--states N] [--budget X] [--dump]
//
//===----------------------------------------------------------------------===//

#include "core/LoopAwareProfiles.h"
#include "core/Pipeline.h"
#include "core/Replication.h"
#include "ir/Printer.h"
#include "ir/Serializer.h"
#include "ir/Verifier.h"
#include "predict/DynamicPredictors.h"
#include "predict/Evaluator.h"
#include "predict/SemiStaticPredictors.h"
#include "support/TablePrinter.h"
#include "trace/TraceFile.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace bpcr;

namespace {

struct Args {
  std::string Command;
  std::string Target;
  uint64_t Seed = 1;
  uint64_t Events = 1'000'000;
  unsigned States = 6;
  double Budget = 2.0;
  bool Dump = false;
  std::string Output;
};

int usage() {
  std::printf(
      "usage: bpcr <command> [options]\n"
      "\n"
      "commands:\n"
      "  list                         list the benchmark workloads\n"
      "  dump <workload>              print the workload's IR\n"
      "  trace <workload>             run and write a branch trace\n"
      "  analyze <workload>           per-branch statistics and prediction\n"
      "                               rates\n"
      "  replicate <workload>         run the full replication pipeline\n"
      "\n"
      "options:\n"
      "  --seed N      workload input seed (default 1)\n"
      "  --events N    branch-event cap (default 1000000)\n"
      "  --states N    per-branch state budget for replicate (default 6)\n"
      "  --budget X    code-size factor budget for replicate (default 2.0)\n"
      "  --dump        also print the transformed IR (replicate)\n"
      "  -o FILE       output file (trace: .bpct; dump/replicate: module\n"
      "                text)\n");
  return 2;
}

bool parseArgs(int Argc, char **Argv, Args &A) {
  if (Argc < 2)
    return false;
  A.Command = Argv[1];
  int I = 2;
  if (A.Command != "list") {
    if (I >= Argc)
      return false;
    A.Target = Argv[I++];
  }
  for (; I < Argc; ++I) {
    std::string Opt = Argv[I];
    auto Next = [&]() -> const char * {
      return (I + 1 < Argc) ? Argv[++I] : nullptr;
    };
    if (Opt == "--seed") {
      const char *V = Next();
      if (!V)
        return false;
      A.Seed = std::strtoull(V, nullptr, 10);
    } else if (Opt == "--events") {
      const char *V = Next();
      if (!V)
        return false;
      A.Events = std::strtoull(V, nullptr, 10);
    } else if (Opt == "--states") {
      const char *V = Next();
      if (!V)
        return false;
      A.States = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (Opt == "--budget") {
      const char *V = Next();
      if (!V)
        return false;
      A.Budget = std::strtod(V, nullptr);
    } else if (Opt == "--dump") {
      A.Dump = true;
    } else if (Opt == "-o") {
      const char *V = Next();
      if (!V)
        return false;
      A.Output = V;
    } else {
      std::printf("unknown option '%s'\n", Opt.c_str());
      return false;
    }
  }
  return true;
}

const Workload *findWorkload(const std::string &Name) {
  for (const Workload &W : allWorkloads())
    if (Name == W.Name)
      return &W;
  std::printf("unknown workload '%s'; try 'bpcr list'\n", Name.c_str());
  return nullptr;
}

int cmdList() {
  TablePrinter Table("Benchmark workloads (paper sec. 3)");
  Table.setHeader({"name", "description"});
  for (const Workload &W : allWorkloads())
    Table.addRow({W.Name, W.Description});
  std::printf("%s", Table.render().c_str());
  return 0;
}

int cmdDump(const Args &A) {
  const Workload *W = findWorkload(A.Target);
  if (!W)
    return 1;
  Module M = W->Build(A.Seed);
  M.assignBranchIds();
  if (!A.Output.empty()) {
    if (!writeModuleFile(A.Output, M)) {
      std::printf("error: cannot write %s\n", A.Output.c_str());
      return 1;
    }
    std::printf("wrote %s (parseable module format)\n", A.Output.c_str());
    return 0;
  }
  std::printf("%s", printModule(M).c_str());
  return 0;
}

int cmdTrace(const Args &A) {
  const Workload *W = findWorkload(A.Target);
  if (!W)
    return 1;
  Module M;
  Trace T = traceWorkload(*W, A.Seed, M, A.Events);
  std::printf("%s seed=%llu: %zu branch events\n", W->Name,
              static_cast<unsigned long long>(A.Seed), T.size());
  std::string Out =
      A.Output.empty() ? (std::string(W->Name) + ".bpct") : A.Output;
  if (!writeTraceFile(Out, T)) {
    std::printf("error: cannot write %s\n", Out.c_str());
    return 1;
  }
  std::vector<uint8_t> Encoded = encodeTrace(T);
  std::printf("wrote %s (%zu bytes, %.2f bytes/event)\n", Out.c_str(),
              Encoded.size(),
              T.empty() ? 0.0
                        : static_cast<double>(Encoded.size()) /
                              static_cast<double>(T.size()));
  return 0;
}

int cmdAnalyze(const Args &A) {
  const Workload *W = findWorkload(A.Target);
  if (!W)
    return 1;
  Module M;
  Trace T = traceWorkload(*W, A.Seed, M, A.Events);
  ProgramAnalysis PA(M);
  ProfileSet Profiles = buildLoopAwareProfiles(PA, T);

  std::printf("%s seed=%llu: %zu events, %u static branches, %llu "
              "instructions\n\n",
              W->Name, static_cast<unsigned long long>(A.Seed), T.size(),
              PA.numBranches(),
              static_cast<unsigned long long>(M.instructionCount()));

  TablePrinter Table("Per-branch statistics");
  Table.setHeader({"branch", "kind", "executions", "taken %",
                   "profile miss %", "resets"});
  for (uint32_t Id = 0; Id < PA.numBranches(); ++Id) {
    const BranchProfile &P = Profiles.branch(static_cast<int32_t>(Id));
    const BranchClass &C = PA.classOf(static_cast<int32_t>(Id));
    const char *Kind = C.Kind == BranchKind::IntraLoop  ? "intra-loop"
                       : C.Kind == BranchKind::LoopExit ? "loop-exit"
                                                        : "non-loop";
    double TakenPct =
        P.executions() ? 100.0 * static_cast<double>(P.takenCount()) /
                             static_cast<double>(P.executions())
                       : 0.0;
    double MissPct =
        P.executions() ? 100.0 * static_cast<double>(
                                     P.profileMispredictions()) /
                             static_cast<double>(P.executions())
                       : 0.0;
    Table.addRow({std::to_string(Id), Kind,
                  std::to_string(P.executions()), formatPercent(TakenPct),
                  formatPercent(MissPct),
                  std::to_string(P.ResetPositions.size())});
  }
  std::printf("%s\n", Table.render().c_str());

  TablePrinter Pred("Prediction rates on this trace (misprediction %)");
  Pred.setHeader({"strategy", "rate"});
  {
    ProfilePredictor P;
    Pred.addRow({"profile",
                 formatPercent(
                     evaluateSelfTrained(P, T).mispredictionPercent())});
  }
  {
    LoopCorrelationPredictor P;
    Pred.addRow({"loop-correlation",
                 formatPercent(
                     evaluateSelfTrained(P, T).mispredictionPercent())});
  }
  {
    TwoLevelPredictor P(TwoLevelConfig::paperDefault());
    Pred.addRow({"two level (dynamic)",
                 formatPercent(
                     evaluatePredictor(P, T).mispredictionPercent())});
  }
  std::printf("%s", Pred.render().c_str());
  return 0;
}

int cmdReplicate(const Args &A) {
  const Workload *W = findWorkload(A.Target);
  if (!W)
    return 1;
  Module M;
  Trace T = traceWorkload(*W, A.Seed, M, A.Events);

  PipelineOptions Opts;
  Opts.Strategy.MaxStates = A.States;
  Opts.Strategy.NodeBudget = 50'000;
  Opts.MaxSizeFactor = A.Budget;
  PipelineResult PR = replicateModule(M, T, Opts);
  if (!verifyModule(PR.Transformed).empty()) {
    std::printf("error: transformed module failed verification\n");
    return 1;
  }

  TraceStats Stats(static_cast<uint32_t>(M.conditionalBranchCount()));
  Stats.addTrace(T);
  Module P = M;
  annotateProfilePredictions(P, Stats);
  ExecOptions EO;
  EO.MaxBranchEvents = A.Events;
  PredictionStats Before = measureAnnotatedPredictions(P, EO);
  PredictionStats After = measureAnnotatedPredictions(PR.Transformed, EO);

  std::printf("%s seed=%llu (states<=%u, budget %.2fx)\n", W->Name,
              static_cast<unsigned long long>(A.Seed), A.States, A.Budget);
  std::printf("  replications: %u loop, %u joint, %u correlated "
              "(%u skipped for size, %u structurally)\n",
              PR.LoopReplications, PR.JointReplications,
              PR.CorrelatedReplications, PR.SkippedBudget,
              PR.SkippedStructure);
  std::printf("  code size: %llu -> %llu instructions (%.2fx)\n",
              static_cast<unsigned long long>(PR.OrigInstructions),
              static_cast<unsigned long long>(PR.NewInstructions),
              PR.sizeFactor());
  std::printf("  semi-static misprediction: %.1f%% -> %.1f%%\n",
              Before.mispredictionPercent(), After.mispredictionPercent());
  if (!A.Output.empty()) {
    if (!writeModuleFile(A.Output, PR.Transformed)) {
      std::printf("error: cannot write %s\n", A.Output.c_str());
      return 1;
    }
    std::printf("  wrote transformed module to %s\n", A.Output.c_str());
  }
  if (A.Dump)
    std::printf("\n%s", printModule(PR.Transformed).c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Args A;
  if (!parseArgs(Argc, Argv, A))
    return usage();

  if (A.Command == "list")
    return cmdList();
  if (A.Command == "dump")
    return cmdDump(A);
  if (A.Command == "trace")
    return cmdTrace(A);
  if (A.Command == "analyze")
    return cmdAnalyze(A);
  if (A.Command == "replicate")
    return cmdReplicate(A);
  return usage();
}
