//===- tools/bpcr.cpp - Command line driver -------------------------------===//
//
// Part of the bpcr project (Krall, PLDI 1994 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The library's command-line face, mirroring the paper's tooling (a tracer
// that writes branch traces plus an analyzer that turns them into tables):
//
//   bpcr list
//   bpcr dump <workload> [--seed N]
//   bpcr trace <workload> [--seed N] [--events N] [-o trace.bpct]
//   bpcr analyze <workload> [--seed N] [--events N]
//   bpcr replicate <workload> [--seed N] [--states N] [--budget X] [--dump]
//   bpcr report <workload> [--seed N] [--events N] [--states N] [--budget X]
//   bpcr sweep <workload> [--seed N] [--events N] [--states N] [--budget X]
//   bpcr explain <workload> [--top N] [--branch ID] [--format table|csv|json]
//                [--annotate]
//   bpcr timeline <workload> [--window N] [--branch ID] [--phases]
//                [--format table|csv|json] [--timeline-out FILE]
//   bpcr profile <replicate|report|sweep|timeline|lint> <workload>
//                [--format table|json] [--profile-out FILE] [--flame-out FILE]
//   bpcr lint <workload|module-file> [--seed N] [--format table|json|sarif]
//             [--fail-on warning|error] [--replicate] [--jobs N]
//             [--baseline FILE] [--profile TRACE]
//   bpcr compare OLD.json NEW.json [--threshold-file FILE]
//                [--format table|json]
//
// `trace`, `analyze`, `replicate`, `report`, `explain` and `timeline`
// accept --metrics FILE to write a machine-readable JSON run report (schema
// in docs/OBSERVABILITY.md); `report` prints the same data as tables.
// `explain` renders the misprediction attribution ledger: the Pareto table
// of the costliest branches, the per-branch selection reconstruction
// (--branch), and prediction-annotated IR (--annotate). `timeline` renders
// the windowed misprediction series of the transformed module's measurement
// run, its change-point phase segmentation (--phases) or one branch's
// series (--branch). Every command accepts --trace-out FILE to export a
// span timeline in Chrome Trace Event Format; pipeline runs merge the
// windowed misprediction rate into it as counter tracks. `compare` diffs
// two run reports and exits non-zero when a metric crosses its threshold —
// the CI perf-regression gate. `sweep` prints the greedy
// misprediction-vs-size curve (figures 6-13) for one workload; its output
// contains no timings, so it is byte-identical for every --jobs value —
// the determinism test relies on that, and `timeline` output holds to the
// same contract.
//
// The searching commands (replicate/report/explain/timeline/sweep and lint
// --replicate) accept --jobs N to fan the per-branch machine searches over
// a worker pool. Results never depend on the worker count.
//
// `lint` runs the static-analysis pass pipeline (including the const-prop
// proof engine and the predictability classifier) over a workload or a
// serialized module. --profile TRACE additionally admits a recorded branch
// trace through the profile-realizability verifier (Kirchhoff flow
// conservation against the CFG). --baseline FILE suppresses known findings:
// a missing file is written from the current findings (record mode), an
// existing one filters them and warns about stale entries. Lint output is
// deterministic and byte-identical for every --jobs value.
//
// `profile` wraps one of replicate/report/sweep/timeline/lint with the
// self-profiler armed and appends the collected profile (per-category
// self-vs-total span times, RSS and allocation accounting, pool.*
// utilization); --profile-out writes it as JSON and --flame-out writes a
// collapsed-stack flamegraph derived from the span tree. Its --format
// selects the profile rendering; the wrapped command keeps its default
// output.
//
//===----------------------------------------------------------------------===//

#include "core/LoopAwareProfiles.h"
#include "core/Pipeline.h"
#include "core/Replication.h"
#include "core/SizeSweep.h"
#include "ir/Printer.h"
#include "ir/Serializer.h"
#include "ir/Verifier.h"
#include "obs/Compare.h"
#include "obs/Ledger.h"
#include "obs/Metrics.h"
#include "obs/Profiler.h"
#include "obs/Report.h"
#include "obs/TimeSeries.h"
#include "obs/TraceSpans.h"
#include "obs/Trend.h"
#include "obs/Sarif.h"
#include "predict/DynamicPredictors.h"
#include "predict/Evaluator.h"
#include "predict/SemiStaticPredictors.h"
#include "support/TablePrinter.h"
#include "sa/Baseline.h"
#include "sa/Passes.h"
#include "sa/ProfileVerify.h"
#include "sa/ReplicationSoundness.h"
#include "trace/ColumnarTrace.h"
#include "trace/TraceFile.h"
#include "workloads/Workload.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace bpcr;

namespace {

struct Args {
  std::string Command;
  std::string Target;
  uint64_t Seed = 1;
  uint64_t Events = 1'000'000;
  unsigned States = 6;
  double Budget = 2.0;
  /// Worker threads for the machine searches (0 = one per hardware core).
  /// The command line only accepts >= 1; 0 is the programmatic default.
  unsigned Jobs = 0;
  bool BudgetSet = false;
  bool Dump = false;
  std::string Output;
  std::string Metrics;
  // explain options (Top also sizes the report's "branches" section).
  uint64_t Top = 10;
  int64_t Branch = -1;
  std::string Format = "table";
  bool Annotate = false;
  // timeline options.
  uint64_t Window = 0;
  bool Phases = false;
  std::string TimelineOut;
  // compare-only positionals and options.
  std::string CompareOld;
  std::string CompareNew;
  std::string ThresholdFile;
  // trend options (Ledger and Last are shared with compare --ledger).
  std::string Ledger;
  uint64_t Last = 0;
  std::string MetricGlob = "*";
  bool Sparkline = false;
  // lint options.
  std::string FailOn = "error";
  bool Replicate = false;
  std::string BaselinePath;
  std::string LintProfile;
  // profile options (the wrapped command and the artifact paths).
  std::string ProfileInner;
  std::string ProfileOut;
  std::string FlameOut;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: bpcr <command> [options]\n"
      "\n"
      "commands:\n"
      "  list                         list the benchmark workloads\n"
      "  dump <workload>              print the workload's IR\n"
      "  trace <workload>             run and write a branch trace\n"
      "  analyze <workload>           per-branch statistics and prediction\n"
      "                               rates\n"
      "  replicate <workload>         run the full replication pipeline\n"
      "  report <workload>            phase timings and per-branch\n"
      "                               replication decisions\n"
      "  sweep <workload>             greedy misprediction-vs-size curve\n"
      "                               (figures 6-13; deterministic output,\n"
      "                               byte-identical for every --jobs)\n"
      "  explain <workload>           misprediction attribution: Pareto\n"
      "                               table of the costliest branches, or\n"
      "                               one branch's selection decision\n"
      "  timeline <workload>          windowed misprediction time series of\n"
      "                               the replicated program, with phase\n"
      "                               segmentation (deterministic output,\n"
      "                               byte-identical for every --jobs)\n"
      "  profile <cmd> <workload>     run replicate/report/sweep/timeline/\n"
      "                               lint with the self-profiler armed and\n"
      "                               append the profile: per-category\n"
      "                               self-vs-total span times (wall + CPU),\n"
      "                               RSS/allocation accounting, pool\n"
      "                               utilization\n"
      "  lint <workload|module-file>  run the static-analysis passes and\n"
      "                               report diagnostics (exit 1 when any\n"
      "                               reach the --fail-on severity)\n"
      "  compare OLD.json NEW.json    diff two run reports and gate the\n"
      "                               deltas. exit codes: 0 all gates\n"
      "                               passed, 1 at least one metric\n"
      "                               regressed, 2 unreadable report or\n"
      "                               schema mismatch. With --ledger FILE,\n"
      "                               takes one NEW.json and gates it\n"
      "                               against the rolling median +- k*MAD\n"
      "                               band of the ledger history instead\n"
      "                               of a single baseline file\n"
      "  trend                        cross-run trend analytics over a run\n"
      "                               ledger (--ledger FILE): per-metric\n"
      "                               rolling median/MAD bands, outlier\n"
      "                               runs, and step changes found by the\n"
      "                               change-point detector across runs.\n"
      "                               exit codes: 0 clean, 1 latest run is\n"
      "                               an outlier on a gated metric, 2 step\n"
      "                               regression or unreadable ledger\n"
      "\n"
      "options:\n"
      "  --seed N       workload input seed (default 1)\n"
      "  --events N     branch-event cap (default 1000000)\n"
      "  --states N     per-branch state budget for replicate (default 6)\n"
      "  --budget X     code-size factor budget for replicate (default 2.0;\n"
      "                 sweep default 16.0)\n"
      "  --jobs N       worker threads for the machine searches (replicate/\n"
      "                 report/explain/timeline/sweep/lint; default: one\n"
      "                 per hardware core). Results never depend on N\n"
      "  --dump         also print the transformed IR (replicate)\n"
      "  --top N        Pareto entries to show/report (explain/report/\n"
      "                 timeline, default 10)\n"
      "  --branch ID    explain one branch's strategy selection in detail,\n"
      "                 or show one branch's windowed series (timeline)\n"
      "  --window N     timeline window width in branch events (power of\n"
      "                 two between 16 and 67108864; default 1024). When\n"
      "                 the run outgrows the window budget, adjacent\n"
      "                 windows merge and the width doubles\n"
      "  --phases       timeline also prints the detected phases and the\n"
      "                 per-phase split of the top branches (conflicts\n"
      "                 with --branch)\n"
      "  --format F     output format: table (default), csv, or json\n"
      "                 (explain/timeline; report and sweep accept table\n"
      "                 and csv; compare accepts table and json; lint\n"
      "                 accepts table, json and sarif; profile accepts\n"
      "                 table and json, applied to the profile rendering)\n"
      "  --fail-on S    lint severity threshold for exit code 1: warning\n"
      "                 or error (default error)\n"
      "  --replicate    lint also runs the replication pipeline and checks\n"
      "                 the transformed module's simulation relation\n"
      "                 (workload targets only)\n"
      "  --baseline FILE\n"
      "                 lint known-findings baseline. Missing file: record\n"
      "                 the current findings and exit 0. Existing file:\n"
      "                 suppress matching findings; entries matching\n"
      "                 nothing raise lint-baseline.stale-entry warnings\n"
      "  --profile TRACE\n"
      "                 lint also verifies the recorded branch trace\n"
      "                 (.bpct) is flow-realizable on the target's CFG\n"
      "                 (profile-verify pass; see docs/STATIC_ANALYSIS.md)\n"
      "  --annotate     print the transformed IR with per-branch strategy\n"
      "                 and measured miss-rate annotations (explain)\n"
      "  --metrics FILE write a JSON run report (trace/analyze/replicate/\n"
      "                 report/sweep/explain/timeline)\n"
      "  --timeline-out FILE\n"
      "                 write the timeline document as JSON (timeline)\n"
      "  --trace-out FILE\n"
      "                 write a span timeline (Chrome Trace Format JSON,\n"
      "                 loadable in Perfetto / chrome://tracing); pipeline\n"
      "                 runs add windowed miss-rate counter tracks\n"
      "  --profile-out FILE\n"
      "                 write the collected profile as JSON (profile)\n"
      "  --flame-out FILE\n"
      "                 write a collapsed-stack flamegraph (speedscope,\n"
      "                 flamegraph.pl) derived from the span tree (profile)\n"
      "  --threshold-file FILE\n"
      "                 relative-delta thresholds for compare and trend\n"
      "                 (JSON; see docs/OBSERVABILITY.md)\n"
      "  --ledger FILE  run ledger (JSONL, appended by the bench runners;\n"
      "                 see docs/OBSERVABILITY.md) to analyze (trend) or\n"
      "                 gate against (compare)\n"
      "  --last N       analyze only the newest N ledger records\n"
      "                 (trend/compare --ledger; default: all)\n"
      "  --metric GLOB  only analyze metrics matching GLOB (trend;\n"
      "                 default '*')\n"
      "  --sparkline    add a unicode sparkline column to the trend table\n"
      "  -o FILE        output file (trace: .bpct; dump/replicate: module\n"
      "                 text; sweep: curve table)\n");
  return 2;
}

/// Prints a parse error to stderr; the caller follows up with usage().
bool parseError(const std::string &Msg) {
  std::fprintf(stderr, "bpcr: error: %s\n", Msg.c_str());
  return false;
}

bool parseArgs(int Argc, char **Argv, Args &A) {
  if (Argc < 2)
    return parseError("no command given");
  A.Command = Argv[1];

  static const char *Known[] = {"list",   "dump",    "trace",    "analyze",
                                "replicate", "report", "sweep", "explain",
                                "timeline", "lint",   "compare", "profile",
                                "trend"};
  bool KnownCommand = false;
  for (const char *C : Known)
    KnownCommand |= A.Command == C;
  if (!KnownCommand)
    return parseError("unknown command '" + A.Command + "'");

  int I = 2;
  if (A.Command == "compare") {
    // One or two leading report positionals; which count is legal depends
    // on --ledger, so it is validated after the option loop.
    while (I < Argc && Argv[I][0] != '-' && A.CompareNew.empty()) {
      if (A.CompareOld.empty())
        A.CompareOld = Argv[I++];
      else
        A.CompareNew = Argv[I++];
    }
  } else if (A.Command == "profile") {
    if (I >= Argc || Argv[I][0] == '-')
      return parseError(
          "command 'profile' needs a command argument: "
          "profile <replicate|report|sweep|timeline|lint> <workload>");
    A.ProfileInner = Argv[I++];
    static const char *Wrappable[] = {"replicate", "report", "sweep",
                                      "timeline", "lint"};
    bool CanWrap = false;
    for (const char *C : Wrappable)
      CanWrap |= A.ProfileInner == C;
    if (!CanWrap)
      return parseError("command 'profile' wraps replicate, report, sweep, "
                        "timeline or lint, not '" +
                        A.ProfileInner + "'");
    if (I >= Argc || Argv[I][0] == '-')
      return parseError("command 'profile' needs a workload argument");
    A.Target = Argv[I++];
  } else if (A.Command != "list" && A.Command != "trend") {
    if (I >= Argc || Argv[I][0] == '-')
      return parseError("command '" + A.Command +
                        "' needs a workload argument");
    A.Target = Argv[I++];
  }

  // Option applicability under `profile` follows the wrapped command, so
  // `profile timeline x --phases` parses exactly like `timeline x --phases`.
  const std::string Eff = A.Command == "profile" ? A.ProfileInner : A.Command;
  for (; I < Argc; ++I) {
    std::string Opt = Argv[I];
    auto Next = [&]() -> const char * {
      return (I + 1 < Argc) ? Argv[++I] : nullptr;
    };
    // Numeric values are validated in full: "abc", "10x" or an empty
    // string are parse failures, not silent zeros.
    auto ParseU64 = [&](const char *V, uint64_t &Out) {
      char *End = nullptr;
      Out = std::strtoull(V, &End, 10);
      return *V != '\0' && End && *End == '\0';
    };
    if (Opt == "--seed") {
      const char *V = Next();
      if (!V || !ParseU64(V, A.Seed))
        return parseError("option '--seed' needs an integer value");
    } else if (Opt == "--events") {
      const char *V = Next();
      if (!V || !ParseU64(V, A.Events))
        return parseError("option '--events' needs an integer value");
    } else if (Opt == "--states") {
      const char *V = Next();
      uint64_t N = 0;
      if (!V || !ParseU64(V, N) || N == 0)
        return parseError("option '--states' needs a positive integer value");
      A.States = static_cast<unsigned>(N);
    } else if (Opt == "--budget") {
      const char *V = Next();
      char *End = nullptr;
      A.Budget = V ? std::strtod(V, &End) : 0.0;
      if (!V || *V == '\0' || !End || *End != '\0')
        return parseError("option '--budget' needs a numeric value");
      if (A.Budget < 1.0)
        return parseError("option '--budget' must be at least 1.0");
      A.BudgetSet = true;
    } else if (Opt == "--jobs") {
      const char *V = Next();
      uint64_t N = 0;
      if (!V || !ParseU64(V, N) || N == 0 || N > 1024)
        return parseError(
            "option '--jobs' needs an integer value between 1 and 1024");
      static const char *Searching[] = {"replicate", "report",   "sweep",
                                        "explain",   "timeline", "lint"};
      bool Ok = false;
      for (const char *C : Searching)
        Ok |= Eff == C;
      if (!Ok)
        return parseError("option '--jobs' only applies to the replicate, "
                          "report, sweep, explain, timeline and lint "
                          "commands");
      A.Jobs = static_cast<unsigned>(N);
    } else if (Opt == "--dump") {
      A.Dump = true;
    } else if (Opt == "--top") {
      const char *V = Next();
      if (!V || !ParseU64(V, A.Top) || A.Top == 0)
        return parseError("option '--top' needs a positive integer value");
    } else if (Opt == "--branch") {
      const char *V = Next();
      uint64_t N = 0;
      if (!V || !ParseU64(V, N) || N > INT32_MAX)
        return parseError("option '--branch' needs a branch id");
      if (Eff != "explain" && Eff != "timeline")
        return parseError("option '--branch' only applies to the explain "
                          "and timeline commands");
      A.Branch = static_cast<int64_t>(N);
    } else if (Opt == "--window") {
      const char *V = Next();
      uint64_t N = 0;
      if (!V || !ParseU64(V, N))
        return parseError("option '--window' needs an integer value");
      if (Eff != "timeline")
        return parseError(
            "option '--window' only applies to the timeline command");
      if (!isPowerOfTwo(N) || N < 16 || N > (uint64_t{1} << 26))
        return parseError("option '--window' must be a power of two "
                          "between 16 and 67108864");
      A.Window = N;
    } else if (Opt == "--phases") {
      if (Eff != "timeline")
        return parseError(
            "option '--phases' only applies to the timeline command");
      A.Phases = true;
    } else if (Opt == "--timeline-out") {
      const char *V = Next();
      if (!V)
        return parseError("option '--timeline-out' needs a file argument");
      if (Eff != "timeline")
        return parseError(
            "option '--timeline-out' only applies to the timeline command");
      A.TimelineOut = V;
    } else if (Opt == "--format") {
      const char *V = Next();
      if (!V)
        return parseError("option '--format' needs a value");
      A.Format = V;
      if (A.Command == "profile") {
        if (A.Format != "table" && A.Format != "json")
          return parseError("profile '--format' must be table or json");
      } else if (A.Command == "lint") {
        if (A.Format != "table" && A.Format != "json" && A.Format != "sarif")
          return parseError(
              "lint '--format' must be table, json or sarif");
      } else if (A.Command == "compare") {
        if (A.Format != "table" && A.Format != "json")
          return parseError("compare '--format' must be table or json");
      } else if (A.Command == "trend") {
        if (A.Format != "table" && A.Format != "csv" && A.Format != "json")
          return parseError("trend '--format' must be table, csv or json");
      } else {
        if (A.Format != "table" && A.Format != "csv" && A.Format != "json")
          return parseError("option '--format' must be table, csv or json");
        if (A.Command != "explain" && A.Command != "report" &&
            A.Command != "sweep" && A.Command != "timeline")
          return parseError("option '--format' only applies to explain, "
                            "timeline, report, sweep, compare and lint");
        if ((A.Command == "report" || A.Command == "sweep") &&
            A.Format == "json")
          return parseError(A.Command + " emits JSON via --metrics; "
                            "--format accepts table or csv");
      }
    } else if (Opt == "--fail-on") {
      const char *V = Next();
      if (!V)
        return parseError("option '--fail-on' needs a value");
      if (Eff != "lint")
        return parseError("option '--fail-on' only applies to the lint "
                          "command");
      A.FailOn = V;
      if (A.FailOn != "warning" && A.FailOn != "error")
        return parseError("option '--fail-on' must be warning or error");
    } else if (Opt == "--replicate") {
      if (Eff != "lint")
        return parseError(
            "option '--replicate' only applies to the lint command");
      A.Replicate = true;
    } else if (Opt == "--baseline") {
      const char *V = Next();
      if (!V)
        return parseError("option '--baseline' needs a file argument");
      if (Eff != "lint")
        return parseError(
            "option '--baseline' only applies to the lint command");
      A.BaselinePath = V;
    } else if (Opt == "--profile") {
      const char *V = Next();
      if (!V)
        return parseError("option '--profile' needs a trace-file argument");
      if (Eff != "lint")
        return parseError(
            "option '--profile' only applies to the lint command");
      A.LintProfile = V;
    } else if (Opt == "--annotate") {
      if (A.Command != "explain")
        return parseError(
            "option '--annotate' only applies to the explain command");
      A.Annotate = true;
    } else if (Opt == "--metrics") {
      const char *V = Next();
      if (!V)
        return parseError("option '--metrics' needs a file argument");
      A.Metrics = V;
    } else if (Opt == "--profile-out") {
      const char *V = Next();
      if (!V)
        return parseError("option '--profile-out' needs a file argument");
      if (A.Command != "profile")
        return parseError(
            "option '--profile-out' only applies to the profile command");
      A.ProfileOut = V;
    } else if (Opt == "--flame-out") {
      const char *V = Next();
      if (!V)
        return parseError("option '--flame-out' needs a file argument");
      if (A.Command != "profile")
        return parseError(
            "option '--flame-out' only applies to the profile command");
      A.FlameOut = V;
    } else if (Opt == "--threshold-file") {
      const char *V = Next();
      if (!V)
        return parseError("option '--threshold-file' needs a file argument");
      if (A.Command != "compare" && A.Command != "trend")
        return parseError("option '--threshold-file' only applies to the "
                          "compare and trend commands");
      A.ThresholdFile = V;
    } else if (Opt == "--ledger") {
      const char *V = Next();
      if (!V)
        return parseError("option '--ledger' needs a file argument");
      if (A.Command != "compare" && A.Command != "trend")
        return parseError("option '--ledger' only applies to the compare "
                          "and trend commands");
      A.Ledger = V;
    } else if (Opt == "--last") {
      const char *V = Next();
      if (!V || !ParseU64(V, A.Last) || A.Last == 0)
        return parseError("option '--last' needs a positive integer value");
      if (A.Command != "compare" && A.Command != "trend")
        return parseError(
            "option '--last' only applies to the compare and trend commands");
    } else if (Opt == "--metric") {
      const char *V = Next();
      if (!V || *V == '\0')
        return parseError("option '--metric' needs a glob argument");
      if (A.Command != "trend")
        return parseError(
            "option '--metric' only applies to the trend command");
      A.MetricGlob = V;
    } else if (Opt == "--sparkline") {
      if (A.Command != "trend")
        return parseError(
            "option '--sparkline' only applies to the trend command");
      A.Sparkline = true;
    } else if (Opt == "-o") {
      const char *V = Next();
      if (!V)
        return parseError("option '-o' needs a file argument");
      A.Output = V;
    } else {
      return parseError("unknown option '" + Opt + "'");
    }
  }
  if (Eff == "timeline" && A.Phases && A.Branch >= 0)
    return parseError("options '--phases' and '--branch' are mutually "
                      "exclusive: phase splits already cover the top "
                      "branches (pick one view)");
  if (A.Command == "compare") {
    if (!A.Ledger.empty()) {
      if (A.CompareOld.empty() || !A.CompareNew.empty())
        return parseError("'compare --ledger' takes one run-report "
                          "argument: compare NEW.json --ledger FILE");
      // The single positional is the fresh report being gated.
      A.CompareNew = A.CompareOld;
      A.CompareOld.clear();
    } else if (A.CompareOld.empty() || A.CompareNew.empty()) {
      return parseError("command 'compare' needs two run-report arguments: "
                        "compare OLD.json NEW.json (or one with --ledger)");
    }
  }
  if (A.Command == "trend" && A.Ledger.empty())
    return parseError("command 'trend' needs a ledger: trend --ledger FILE");
  return true;
}

const Workload *findWorkload(const std::string &Name) {
  for (const Workload &W : allWorkloads())
    if (Name == W.Name)
      return &W;
  std::fprintf(stderr, "bpcr: error: unknown workload '%s'; try 'bpcr list'\n",
               Name.c_str());
  return nullptr;
}

/// Writes the JSON run report when --metrics was given. \returns false on
/// I/O failure.
bool writeMetrics(const Args &A, const PipelineResult *PR) {
  if (A.Metrics.empty())
    return true;
  ReportMeta Meta;
  Meta.Tool = "bpcr";
  Meta.Command = A.Command;
  Meta.Workload = A.Target;
  Meta.Seed = A.Seed;
  Meta.Events = A.Events;
  Meta.BranchTopK = static_cast<unsigned>(A.Top);
  JsonValue Doc = buildReport(Meta, Registry::global(), PR);
  std::string Error;
  if (!writeReportFile(A.Metrics, Doc, Error)) {
    std::fprintf(stderr, "bpcr: error: %s\n", Error.c_str());
    return false;
  }
  std::printf("wrote metrics to %s\n", A.Metrics.c_str());
  return true;
}

/// Slurps \p Path into \p Out. \returns false and sets \p Error on failure.
bool readFile(const std::string &Path, std::string &Out, std::string &Error) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Error = "cannot open '" + Path + "' for reading";
    return false;
  }
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  bool Ok = std::ferror(F) == 0;
  std::fclose(F);
  if (!Ok)
    Error = "read error on '" + Path + "'";
  return Ok;
}

bool loadReport(const std::string &Path, JsonValue &Doc) {
  std::string Text, Error;
  if (!readFile(Path, Text, Error)) {
    std::fprintf(stderr, "bpcr: error: %s\n", Error.c_str());
    return false;
  }
  Doc = parseJson(Text, Error);
  if (!Error.empty()) {
    std::fprintf(stderr, "bpcr: error: %s: %s\n", Path.c_str(),
                 Error.c_str());
    return false;
  }
  return true;
}

bool loadThresholdFile(const std::string &Path, CompareOptions &Opts) {
  if (Path.empty())
    return true;
  std::string Text, Error;
  if (!readFile(Path, Text, Error)) {
    std::fprintf(stderr, "bpcr: error: %s\n", Error.c_str());
    return false;
  }
  if (!parseThresholdRules(Text, Opts, Error)) {
    std::fprintf(stderr, "bpcr: error: %s: %s\n", Path.c_str(),
                 Error.c_str());
    return false;
  }
  return true;
}

int cmdCompare(const Args &A) {
  JsonValue NewDoc;
  if (!loadReport(A.CompareNew, NewDoc))
    return 2;
  CompareOptions Opts;
  if (!loadThresholdFile(A.ThresholdFile, Opts))
    return 2;

  CompareResult R;
  if (!A.Ledger.empty()) {
    std::vector<LedgerRecord> History;
    std::vector<std::string> Warnings;
    std::string Error;
    if (!readLedger(A.Ledger, History, Warnings, Error)) {
      std::fprintf(stderr, "bpcr: error: %s\n", Error.c_str());
      return 2;
    }
    TrendOptions TOpts;
    TOpts.LastN = A.Last;
    TOpts.Rules = Opts;
    R = compareAgainstLedger(History, NewDoc, TOpts);
    R.Warnings.insert(R.Warnings.begin(), Warnings.begin(), Warnings.end());
  } else {
    JsonValue OldDoc;
    if (!loadReport(A.CompareOld, OldDoc))
      return 2;
    R = compareReports(OldDoc, NewDoc, Opts);
  }

  if (A.Format == "json")
    std::printf("%s\n", compareResultJson(R).dump(2).c_str());
  else
    std::printf("%s", renderCompareResult(R).c_str());
  if (!R.Errors.empty())
    return 2;
  return R.Regressions ? 1 : 0;
}

int cmdTrend(const Args &A) {
  std::vector<LedgerRecord> Records;
  std::vector<std::string> Warnings;
  std::string Error;
  if (!readLedger(A.Ledger, Records, Warnings, Error)) {
    std::fprintf(stderr, "bpcr: error: %s\n", Error.c_str());
    return 2;
  }
  CompareOptions Opts;
  if (!loadThresholdFile(A.ThresholdFile, Opts))
    return 2;

  TrendOptions TOpts;
  TOpts.MetricGlob = A.MetricGlob;
  TOpts.LastN = A.Last;
  TOpts.Rules = Opts;
  TrendResult R = analyzeTrends(Records, TOpts);
  R.Warnings.insert(R.Warnings.begin(), Warnings.begin(), Warnings.end());

  if (A.Format == "json")
    std::printf("%s\n", trendJson(R).dump(2).c_str());
  else if (A.Format == "csv")
    std::printf("%s", renderTrendCsv(R).c_str());
  else
    std::printf("%s", renderTrendTable(R, A.Sparkline).c_str());

  if (!R.Errors.empty() || R.Regressions)
    return 2;
  return R.LatestOutliers ? 1 : 0;
}

int cmdList() {
  TablePrinter Table("Benchmark workloads (paper sec. 3)");
  Table.setHeader({"name", "description"});
  for (const Workload &W : allWorkloads())
    Table.addRow({W.Name, W.Description});
  std::printf("%s", Table.render().c_str());
  return 0;
}

int cmdDump(const Args &A) {
  const Workload *W = findWorkload(A.Target);
  if (!W)
    return 1;
  Module M = W->Build(A.Seed);
  M.assignBranchIds();
  if (!A.Output.empty()) {
    if (!writeModuleFile(A.Output, M)) {
      std::fprintf(stderr, "bpcr: error: cannot write %s\n",
                   A.Output.c_str());
      return 1;
    }
    std::printf("wrote %s (parseable module format)\n", A.Output.c_str());
    return 0;
  }
  std::printf("%s", printModule(M).c_str());
  return 0;
}

int cmdTrace(const Args &A) {
  const Workload *W = findWorkload(A.Target);
  if (!W)
    return 1;
  Module M;
  Trace T = traceWorkload(*W, A.Seed, M, A.Events);
  std::printf("%s seed=%llu: %zu branch events\n", W->Name,
              static_cast<unsigned long long>(A.Seed), T.size());
  std::string Out =
      A.Output.empty() ? (std::string(W->Name) + ".bpct") : A.Output;
  if (!writeTraceFile(Out, T)) {
    std::fprintf(stderr, "bpcr: error: cannot write %s\n", Out.c_str());
    return 1;
  }
  std::vector<uint8_t> Encoded = encodeTrace(T);
  std::printf("wrote %s (%zu bytes, %.2f bytes/event)\n", Out.c_str(),
              Encoded.size(),
              T.empty() ? 0.0
                        : static_cast<double>(Encoded.size()) /
                              static_cast<double>(T.size()));
  return writeMetrics(A, nullptr) ? 0 : 1;
}

int cmdAnalyze(const Args &A) {
  const Workload *W = findWorkload(A.Target);
  if (!W)
    return 1;
  Module M;
  Trace T = traceWorkload(*W, A.Seed, M, A.Events);
  ProgramAnalysis PA(M);
  ProfileSet Profiles = buildLoopAwareProfiles(PA, T);

  std::printf("%s seed=%llu: %zu events, %u static branches, %llu "
              "instructions\n\n",
              W->Name, static_cast<unsigned long long>(A.Seed), T.size(),
              PA.numBranches(),
              static_cast<unsigned long long>(M.instructionCount()));

  TablePrinter Table("Per-branch statistics");
  Table.setHeader({"branch", "kind", "executions", "taken %",
                   "profile miss %", "resets"});
  for (uint32_t Id = 0; Id < PA.numBranches(); ++Id) {
    const BranchProfile &P = Profiles.branch(static_cast<int32_t>(Id));
    const BranchClass &C = PA.classOf(static_cast<int32_t>(Id));
    const char *Kind = C.Kind == BranchKind::IntraLoop  ? "intra-loop"
                       : C.Kind == BranchKind::LoopExit ? "loop-exit"
                                                        : "non-loop";
    double TakenPct =
        P.executions() ? 100.0 * static_cast<double>(P.takenCount()) /
                             static_cast<double>(P.executions())
                       : 0.0;
    double MissPct =
        P.executions() ? 100.0 * static_cast<double>(
                                     P.profileMispredictions()) /
                             static_cast<double>(P.executions())
                       : 0.0;
    Table.addRow({std::to_string(Id), Kind,
                  std::to_string(P.executions()), formatPercent(TakenPct),
                  formatPercent(MissPct),
                  std::to_string(P.ResetPositions.size())});
  }
  std::printf("%s\n", Table.render().c_str());

  TablePrinter Pred("Prediction rates on this trace (misprediction %)");
  Pred.setHeader({"strategy", "rate"});
  {
    ProfilePredictor P;
    Pred.addRow({"profile",
                 formatPercent(
                     evaluateSelfTrained(P, T).mispredictionPercent())});
  }
  {
    LoopCorrelationPredictor P;
    Pred.addRow({"loop-correlation",
                 formatPercent(
                     evaluateSelfTrained(P, T).mispredictionPercent())});
  }
  {
    TwoLevelPredictor P(TwoLevelConfig::paperDefault());
    Pred.addRow({"two level (dynamic)",
                 formatPercent(
                     evaluatePredictor(P, T).mispredictionPercent())});
  }
  std::printf("%s", Pred.render().c_str());
  return writeMetrics(A, nullptr) ? 0 : 1;
}

/// Shared by replicate and report: trace + pipeline + verification.
bool runPipeline(const Args &A, const Workload &W, Module &M, Trace &T,
                 PipelineResult &PR) {
  T = traceWorkload(W, A.Seed, M, A.Events);
  PipelineOptions Opts;
  Opts.Strategy.MaxStates = A.States;
  Opts.Strategy.NodeBudget = 50'000;
  Opts.Strategy.Jobs = A.Jobs;
  Opts.MaxSizeFactor = A.Budget;
  Opts.TimelineWindowEvents = A.Window;
  PR = replicateModule(M, T, Opts);
  if (!verifyModule(PR.Transformed).empty()) {
    std::fprintf(stderr,
                 "bpcr: error: transformed module failed verification\n");
    return false;
  }
  if (!PR.Soundness.empty()) {
    std::fprintf(stderr, "bpcr: error: replication soundness check failed "
                         "(%zu finding(s)):\n",
                 PR.Soundness.size());
    for (const sa::Diagnostic &D : PR.Soundness)
      std::fprintf(stderr, "  %s\n", D.render().c_str());
    return false;
  }
  return true;
}

int cmdReplicate(const Args &A) {
  const Workload *W = findWorkload(A.Target);
  if (!W)
    return 1;
  Module M;
  Trace T;
  PipelineResult PR;
  if (!runPipeline(A, *W, M, T, PR))
    return 1;

  TraceStats Stats(static_cast<uint32_t>(M.conditionalBranchCount()));
  Stats.addTrace(T);
  Module P = M;
  annotateProfilePredictions(P, Stats);
  ExecOptions EO;
  EO.MaxBranchEvents = A.Events;
  PredictionStats Before = measureAnnotatedPredictions(P, EO);
  PredictionStats After = measureAnnotatedPredictions(PR.Transformed, EO);

  std::printf("%s seed=%llu (states<=%u, budget %.2fx)\n", W->Name,
              static_cast<unsigned long long>(A.Seed), A.States, A.Budget);
  std::printf("  replications: %u loop, %u joint, %u correlated "
              "(%u skipped for size, %u structurally)\n",
              PR.LoopReplications, PR.JointReplications,
              PR.CorrelatedReplications, PR.SkippedBudget,
              PR.SkippedStructure);
  std::printf("  code size: %llu -> %llu instructions (%.2fx)\n",
              static_cast<unsigned long long>(PR.OrigInstructions),
              static_cast<unsigned long long>(PR.NewInstructions),
              PR.sizeFactor());
  std::printf("  semi-static misprediction: %.1f%% -> %.1f%%\n",
              Before.mispredictionPercent(), After.mispredictionPercent());
  if (!A.Output.empty()) {
    if (!writeModuleFile(A.Output, PR.Transformed)) {
      std::fprintf(stderr, "bpcr: error: cannot write %s\n",
                   A.Output.c_str());
      return 1;
    }
    std::printf("  wrote transformed module to %s\n", A.Output.c_str());
  }
  if (A.Dump)
    std::printf("\n%s", printModule(PR.Transformed).c_str());
  return writeMetrics(A, &PR) ? 0 : 1;
}

/// Renders \p T as aligned text or CSV per --format.
void printTable(const TablePrinter &T, const Args &A) {
  if (A.Format == "csv")
    std::printf("%s", T.renderCsv().c_str());
  else
    std::printf("%s", T.render().c_str());
}

int cmdReport(const Args &A) {
  const Workload *W = findWorkload(A.Target);
  if (!W)
    return 1;
  Module M;
  Trace T;
  PipelineResult PR;
  if (!runPipeline(A, *W, M, T, PR))
    return 1;

  Registry &Obs = Registry::global();
  const bool Csv = A.Format == "csv";

  if (!Csv)
    std::printf("%s seed=%llu: %zu events, pipeline with states<=%u, "
                "budget %.2fx\n\n",
                W->Name, static_cast<unsigned long long>(A.Seed), T.size(),
                A.States, A.Budget);

  char Buf[64];
  TablePrinter Phases("Pipeline phase wall time");
  Phases.setHeader({"phase", "runs", "total ms", "mean ms", "p95 ms"});
  for (const auto &[Name, H] : Obs.timers()) {
    std::string Label = Name;
    const std::string Prefix = "pipeline.phase.";
    if (Label.rfind(Prefix, 0) == 0)
      Label = Label.substr(Prefix.size());
    std::vector<std::string> Row{Label, std::to_string(H.count())};
    std::snprintf(Buf, sizeof(Buf), "%.3f", H.sum() / 1e6);
    Row.push_back(Buf);
    std::snprintf(Buf, sizeof(Buf), "%.3f", H.mean() / 1e6);
    Row.push_back(Buf);
    std::snprintf(Buf, sizeof(Buf), "%.3f", H.p95() / 1e6);
    Row.push_back(Buf);
    Phases.addRow(std::move(Row));
  }
  printTable(Phases, A);
  std::printf("\n");

  if (!Csv) {
    uint64_t Events = Obs.counter("interp.branch_events").value();
    uint64_t Insts = Obs.counter("interp.instructions").value();
    double EventRate = Obs.gauge("interp.events_per_sec").value();
    double InstRate = Obs.gauge("interp.instructions_per_sec").value();
    std::printf("Interpreter: %llu instructions, %llu branch events "
                "(last run: %.1fM insts/s, %.1fM events/s)\n\n",
                static_cast<unsigned long long>(Insts),
                static_cast<unsigned long long>(Events), InstRate / 1e6,
                EventRate / 1e6);
  }

  TablePrinter Decisions("Per-branch replication decisions");
  Decisions.setHeader({"branch", "strategy", "action", "gain", "cost",
                       "reason"});
  for (const BranchDecision &D : PR.Decisions.all())
    Decisions.addRow({std::to_string(D.BranchId), D.Strategy,
                      decisionActionName(D.Action),
                      std::to_string(D.EstimatedGain),
                      std::to_string(D.SizeCost), D.Reason});
  printTable(Decisions, A);

  if (!Csv)
    std::printf("\nSummary: %u loop, %u joint, %u correlated replications; "
                "code size %.2fx\n",
                PR.LoopReplications, PR.JointReplications,
                PR.CorrelatedReplications, PR.sizeFactor());
  return writeMetrics(A, &PR) ? 0 : 1;
}

/// Writes \p Text to \p Path, or stdout when \p Path is empty. \returns
/// false and sets \p Error (path + reason, e.g. the missing parent
/// directory's ENOENT) on failure.
bool emitText(const std::string &Path, const std::string &Text,
              std::string &Error) {
  if (Path.empty()) {
    std::printf("%s", Text.c_str());
    return true;
  }
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    Error =
        "cannot open '" + Path + "' for writing: " + std::strerror(errno);
    return false;
  }
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  Ok &= std::fclose(F) == 0;
  if (!Ok)
    Error = "short write to '" + Path + "'";
  return Ok;
}

int cmdSweep(const Args &A) {
  const Workload *W = findWorkload(A.Target);
  if (!W)
    return 1;
  Module M;
  Trace T = traceWorkload(*W, A.Seed, M, A.Events);
  ProgramAnalysis PA(M);
  ProfileSet Profiles = buildLoopAwareProfiles(PA, T);

  SweepOptions Opts;
  Opts.MaxStates = A.States;
  // The sweep wants to chart the whole curve, not enforce a deployment
  // budget, so its default is the figures' 16x (replicate keeps 2x).
  Opts.MaxSizeFactor = A.BudgetSet ? A.Budget : 16.0;
  Opts.NodeBudget = 50'000;
  Opts.Jobs = A.Jobs;
  std::vector<SweepPoint> Points = computeSizeSweep(PA, Profiles, T, Opts);

  // Deliberately no timings or rates anywhere in this output: the
  // determinism test byte-compares it across --jobs values.
  TablePrinter Table(std::string(W->Name) +
                     " — misprediction rate vs. code size (states<=" +
                     std::to_string(A.States) + ")");
  Table.setHeader({"step", "size factor", "mispredict %", "grown branch",
                   "states"});
  char SF[32];
  for (size_t I = 0; I < Points.size(); ++I) {
    const SweepPoint &P = Points[I];
    std::snprintf(SF, sizeof(SF), "%.3f", P.SizeFactor);
    Table.addRow({std::to_string(I), SF, formatPercent(P.MispredictPercent),
                  P.BranchId < 0 ? "-" : std::to_string(P.BranchId),
                  std::to_string(P.NewStates)});
  }
  if (!A.Output.empty()) {
    std::string Text =
        A.Format == "csv" ? Table.renderCsv() : Table.render();
    std::string Error;
    if (!emitText(A.Output, Text, Error)) {
      std::fprintf(stderr, "bpcr: error: %s\n", Error.c_str());
      return 1;
    }
    std::printf("wrote %s\n", A.Output.c_str());
  } else {
    printTable(Table, A);
  }
  return writeMetrics(A, nullptr) ? 0 : 1;
}

/// Appends per-branch strategy and measured miss-rate comments to the IR
/// dump of the transformed module (`bpcr explain --annotate`).
std::string annotateBranch(const AttributionLedger &L, const Instruction &I) {
  if (!I.isConditionalBranch())
    return "";
  const BranchAttribution *B = L.maybeBranch(I.OrigBranchId);
  if (!B)
    return "";
  char Buf[128];
  for (const ReplicaStat &R : B->Replicas)
    if (R.ReplicaId == I.BranchId) {
      double Miss = R.Executions
                        ? 100.0 * static_cast<double>(R.Mispredictions) /
                              static_cast<double>(R.Executions)
                        : 0.0;
      std::snprintf(Buf, sizeof(Buf),
                    "strategy=%s exec=%llu miss=%.1f%%", B->Strategy.c_str(),
                    static_cast<unsigned long long>(R.Executions), Miss);
      return Buf;
    }
  std::snprintf(Buf, sizeof(Buf), "strategy=%s (not executed)",
                B->Strategy.c_str());
  return Buf;
}

/// JSON view of one branch's selection reconstruction.
JsonValue branchDetailJson(const BranchAttribution &B,
                           const BranchEvalStats &Dyn) {
  JsonValue Doc = JsonValue::object();
  Doc.set("branch", JsonValue::integer(static_cast<int64_t>(B.BranchId)));
  Doc.set("strategy", JsonValue::str(B.Strategy));
  Doc.set("action", JsonValue::str(B.Action));
  Doc.set("executions", JsonValue::integer(B.Executions));
  Doc.set("taken_percent", JsonValue::number(B.takenBiasPercent()));
  if (!B.RunnerUp.empty()) {
    Doc.set("runner_up", JsonValue::str(B.RunnerUp));
    Doc.set("runner_up_delta", JsonValue::integer(B.RunnerUpDelta));
  }
  JsonValue Cands = JsonValue::array();
  for (const CandidateScore &C : B.Candidates) {
    JsonValue J = JsonValue::object();
    J.set("strategy", JsonValue::str(C.Strategy));
    J.set("states", JsonValue::integer(static_cast<int64_t>(C.States)));
    J.set("train_correct", JsonValue::integer(C.Correct));
    J.set("train_total", JsonValue::integer(C.Total));
    J.set("hit_rate_percent", JsonValue::number(C.hitRatePercent()));
    J.set("chosen", JsonValue::boolean(C.Chosen));
    Cands.push(std::move(J));
  }
  Doc.set("candidates", std::move(Cands));
  JsonValue Measured = JsonValue::object();
  Measured.set("executions", JsonValue::integer(B.MeasuredExecutions));
  Measured.set("mispredictions", JsonValue::integer(B.Mispredictions));
  Measured.set("miss_rate_percent", JsonValue::number(B.missRatePercent()));
  Doc.set("measured", std::move(Measured));
  if (!B.Replicas.empty()) {
    JsonValue Reps = JsonValue::array();
    for (const ReplicaStat &R : B.Replicas) {
      JsonValue J = JsonValue::object();
      J.set("id", JsonValue::integer(static_cast<int64_t>(R.ReplicaId)));
      J.set("executions", JsonValue::integer(R.Executions));
      J.set("mispredictions", JsonValue::integer(R.Mispredictions));
      Reps.push(std::move(J));
    }
    Doc.set("replicas", std::move(Reps));
  }
  JsonValue TwoLevel = JsonValue::object();
  TwoLevel.set("executions", JsonValue::integer(Dyn.Executions));
  TwoLevel.set("mispredictions", JsonValue::integer(Dyn.Mispredictions));
  TwoLevel.set("miss_rate_percent", JsonValue::number(Dyn.missRatePercent()));
  Doc.set("two_level", std::move(TwoLevel));
  return Doc;
}

int cmdExplain(const Args &A) {
  const Workload *W = findWorkload(A.Target);
  if (!W)
    return 1;
  Module M;
  Trace T;
  PipelineResult PR;
  if (!runPipeline(A, *W, M, T, PR))
    return 1;
  const AttributionLedger &L = PR.Attribution;
  if (L.empty()) {
    std::fprintf(stderr,
                 "bpcr: error: attribution ledger is empty (the workload "
                 "has no conditional branches?)\n");
    return 1;
  }

  if (A.Branch >= 0) {
    const BranchAttribution *B =
        L.maybeBranch(static_cast<int32_t>(A.Branch));
    if (!B) {
      std::fprintf(stderr,
                   "bpcr: error: branch %lld out of range (%zu static "
                   "branches)\n",
                   static_cast<long long>(A.Branch), L.size());
      return 1;
    }
    // The dynamic comparison column: how a two-level hardware predictor
    // fares on the same branch and trace.
    TwoLevelPredictor DP(TwoLevelConfig::paperDefault());
    std::vector<BranchEvalStats> Dyn = evaluatePredictorPerBranchDetailed(
        DP, T, static_cast<uint32_t>(L.size()));
    const BranchEvalStats &DB = Dyn[static_cast<size_t>(A.Branch)];

    if (A.Format == "json") {
      std::printf("%s", branchDetailJson(*B, DB).dump(2).c_str());
    } else {
      if (A.Format != "csv") {
        std::printf("branch %d: chosen strategy %s, action %s\n",
                    B->BranchId, B->Strategy.c_str(), B->Action.c_str());
        std::printf("  trained on %llu executions, %.1f%% taken\n",
                    static_cast<unsigned long long>(B->Executions),
                    B->takenBiasPercent());
        if (!B->RunnerUp.empty())
          std::printf("  won over %s by %llu correct training "
                      "predictions\n",
                      B->RunnerUp.c_str(),
                      static_cast<unsigned long long>(B->RunnerUpDelta));
        else
          std::printf("  no competing candidate was built\n");
        std::printf("\n");
      }
      TablePrinter Cands("Candidate strategies for branch " +
                         std::to_string(B->BranchId));
      Cands.setHeader({"strategy", "states", "train correct", "train total",
                       "hit rate %", "chosen"});
      for (const CandidateScore &C : B->Candidates)
        Cands.addRow({C.Strategy, std::to_string(C.States),
                      std::to_string(C.Correct), std::to_string(C.Total),
                      formatPercent(C.hitRatePercent()),
                      C.Chosen ? "*" : ""});
      printTable(Cands, A);
      if (A.Format != "csv") {
        std::printf("\nmeasured on the transformed program: %llu "
                    "executions, %llu mispredictions (%.1f%% miss)\n",
                    static_cast<unsigned long long>(B->MeasuredExecutions),
                    static_cast<unsigned long long>(B->Mispredictions),
                    B->missRatePercent());
        std::printf("two-level dynamic predictor on the same trace: "
                    "%.1f%% miss\n",
                    DB.missRatePercent());
      }
      if (B->Replicas.size() > 1) {
        if (A.Format != "csv")
          std::printf("\n");
        TablePrinter Reps("Replica copies of branch " +
                          std::to_string(B->BranchId));
        Reps.setHeader({"replica id", "executions", "mispredictions",
                        "miss %"});
        for (const ReplicaStat &R : B->Replicas) {
          double Miss = R.Executions
                            ? 100.0 * static_cast<double>(R.Mispredictions) /
                                  static_cast<double>(R.Executions)
                            : 0.0;
          Reps.addRow({std::to_string(R.ReplicaId),
                       std::to_string(R.Executions),
                       std::to_string(R.Mispredictions),
                       formatPercent(Miss)});
        }
        printTable(Reps, A);
      }
    }
  } else if (A.Format == "json") {
    std::printf("%s", attributionJson(L, static_cast<unsigned>(A.Top))
                          .dump(2)
                          .c_str());
  } else {
    auto Top = L.topByMispredictions(A.Top);
    const uint64_t TotalMiss = L.totalMispredictions();
    uint64_t Cum = 0;
    TablePrinter Table("Misprediction Pareto view: top " +
                       std::to_string(Top.size()) + " of " +
                       std::to_string(L.size()) + " branches");
    Table.setHeader({"rank", "branch", "strategy", "action", "executions",
                     "mispred", "miss %", "taken %", "cum %"});
    unsigned Rank = 1;
    for (const BranchAttribution *B : Top) {
      Cum += B->Mispredictions;
      double CumPct = TotalMiss ? 100.0 * static_cast<double>(Cum) /
                                      static_cast<double>(TotalMiss)
                                : 0.0;
      Table.addRow({std::to_string(Rank++), std::to_string(B->BranchId),
                    B->Strategy, B->Action,
                    std::to_string(B->MeasuredExecutions),
                    std::to_string(B->Mispredictions),
                    formatPercent(B->missRatePercent()),
                    formatPercent(B->takenBiasPercent()),
                    formatPercent(CumPct)});
    }
    printTable(Table, A);
    if (A.Format != "csv")
      std::printf("\ntop %zu branches cover %llu of %llu mispredictions "
                  "(%.1f%%)\n",
                  Top.size(), static_cast<unsigned long long>(Cum),
                  static_cast<unsigned long long>(TotalMiss),
                  TotalMiss ? 100.0 * static_cast<double>(Cum) /
                                  static_cast<double>(TotalMiss)
                            : 0.0);
  }

  if (A.Annotate) {
    std::printf("\n%s",
                printModule(PR.Transformed,
                            [&L](const Instruction &I) {
                              return annotateBranch(L, I);
                            })
                    .c_str());
  }
  return writeMetrics(A, &PR) ? 0 : 1;
}

/// Phase index per window, for the series table's phase column.
std::vector<uint32_t> phaseOfWindow(const TimeSeriesData &TS,
                                    const std::vector<PhaseSegment> &Phases) {
  std::vector<uint32_t> Out(TS.Windows.size(), 0);
  for (size_t P = 0; P < Phases.size(); ++P)
    for (uint32_t W = Phases[P].FirstWindow; W <= Phases[P].LastWindow; ++W)
      Out[W] = static_cast<uint32_t>(P);
  return Out;
}

/// The timeline document for `--format json` and `--timeline-out`: run
/// context plus the same "timeline" object the v3 report embeds.
JsonValue timelineDoc(const Args &A, const PipelineResult &PR) {
  std::vector<int32_t> TopIds;
  for (const BranchAttribution *B :
       PR.Attribution.topByMispredictions(A.Top))
    TopIds.push_back(B->BranchId);
  JsonValue Doc = JsonValue::object();
  Doc.set("tool", JsonValue::str("bpcr"));
  Doc.set("command", JsonValue::str("timeline"));
  Doc.set("workload", JsonValue::str(A.Target));
  Doc.set("seed", JsonValue::integer(A.Seed));
  Doc.set("events", JsonValue::integer(A.Events));
  Doc.set("timeline", timelineJson(PR.Timeline, TopIds));
  return Doc;
}

int cmdTimeline(const Args &A) {
  const Workload *W = findWorkload(A.Target);
  if (!W)
    return 1;
  Module M;
  Trace T;
  PipelineResult PR;
  if (!runPipeline(A, *W, M, T, PR))
    return 1;
  const TimeSeriesData &TS = PR.Timeline;
  if (TS.empty()) {
    std::fprintf(stderr, "bpcr: error: timeline is empty (the workload "
                         "produced no branch events?)\n");
    return 1;
  }
  if (A.Branch >= 0 && static_cast<uint64_t>(A.Branch) >= TS.NumBranches) {
    std::fprintf(stderr,
                 "bpcr: error: branch %lld out of range (%u static "
                 "branches)\n",
                 static_cast<long long>(A.Branch), TS.NumBranches);
    return 1;
  }

  // Everything printed below is derived from event counts alone — no
  // timings, no rates-per-second — so the output is byte-identical for
  // every --jobs value; the determinism test relies on that.
  std::vector<PhaseSegment> Phases = segmentPhases(TS);
  if (A.Format == "json") {
    std::printf("%s\n", timelineDoc(A, PR).dump(2).c_str());
  } else {
    if (A.Format != "csv")
      std::printf("%s seed=%llu: %llu events, window %llu events, %zu "
                  "windows, %zu phases, warmup %llu events\n\n",
                  W->Name, static_cast<unsigned long long>(A.Seed),
                  static_cast<unsigned long long>(TS.TotalEvents),
                  static_cast<unsigned long long>(TS.WindowEvents),
                  TS.Windows.size(), Phases.size(),
                  static_cast<unsigned long long>(
                      estimateWarmupEvents(TS, Phases)));

    if (A.Branch >= 0) {
      TablePrinter Table("Branch " + std::to_string(A.Branch) +
                         " windowed series (window " +
                         std::to_string(TS.WindowEvents) + " events)");
      Table.setHeader({"window", "start event", "executions", "taken %",
                       "miss %"});
      for (size_t I = 0; I < TS.Windows.size(); ++I) {
        const TimeSeriesWindow &Win = TS.Windows[I];
        TimeSeriesCell C;
        if (static_cast<size_t>(A.Branch) < Win.Branches.size())
          C = Win.Branches[static_cast<size_t>(A.Branch)];
        Table.addRow(
            {std::to_string(I), std::to_string(I * TS.WindowEvents),
             std::to_string(C.Events),
             formatPercent(TimeSeriesData::percent(C.Taken, C.Events)),
             formatPercent(
                 TimeSeriesData::percent(C.Mispredictions, C.Events))});
      }
      printTable(Table, A);
    } else {
      std::vector<uint32_t> PhaseOf = phaseOfWindow(TS, Phases);
      TablePrinter Table("Windowed misprediction series (window " +
                         std::to_string(TS.WindowEvents) + " events)");
      Table.setHeader({"window", "start event", "events", "taken %",
                       "miss %", "phase"});
      for (size_t I = 0; I < TS.Windows.size(); ++I) {
        const TimeSeriesWindow &Win = TS.Windows[I];
        Table.addRow(
            {std::to_string(I), std::to_string(I * TS.WindowEvents),
             std::to_string(Win.Events),
             formatPercent(TimeSeriesData::percent(Win.Taken, Win.Events)),
             formatPercent(
                 TimeSeriesData::percent(Win.Mispredictions, Win.Events)),
             std::to_string(PhaseOf[I])});
      }
      printTable(Table, A);
    }

    if (A.Phases) {
      if (A.Format != "csv")
        std::printf("\n");
      uint64_t Warmup = estimateWarmupEvents(TS, Phases);
      TablePrinter PT("Phases (change points of the windowed "
                      "misprediction rate)");
      PT.setHeader({"phase", "windows", "start event", "events", "taken %",
                    "miss %", "note"});
      for (size_t P = 0; P < Phases.size(); ++P) {
        const PhaseSegment &S = Phases[P];
        const char *Note = "";
        if (Phases.size() > 1) {
          if (P + 1 == Phases.size())
            Note = "steady";
          else if (Warmup > 0 && S.StartEvent < Warmup)
            Note = "warmup";
        }
        PT.addRow({std::to_string(P),
                   std::to_string(S.FirstWindow) + "-" +
                       std::to_string(S.LastWindow),
                   std::to_string(S.StartEvent), std::to_string(S.Events),
                   formatPercent(S.takenPercent()),
                   formatPercent(S.missRatePercent()), Note});
      }
      printTable(PT, A);

      // Per-phase split of the attribution ledger's top branches: where in
      // the run each suspect actually pays its mispredictions.
      auto Top = PR.Attribution.topByMispredictions(A.Top);
      if (!Top.empty()) {
        if (A.Format != "csv")
          std::printf("\n");
        TablePrinter BT("Per-phase split of the top " +
                        std::to_string(Top.size()) + " branches");
        BT.setHeader({"phase", "branch", "executions", "mispred",
                      "miss %"});
        for (size_t P = 0; P < Phases.size(); ++P) {
          const PhaseSegment &S = Phases[P];
          for (const BranchAttribution *B : Top) {
            if (B->BranchId < 0 ||
                static_cast<uint32_t>(B->BranchId) >= TS.NumBranches)
              continue;
            TimeSeriesCell C;
            for (uint32_t WI = S.FirstWindow; WI <= S.LastWindow; ++WI) {
              const TimeSeriesWindow &Win = TS.Windows[WI];
              if (static_cast<uint32_t>(B->BranchId) <
                  Win.Branches.size()) {
                const TimeSeriesCell &Cell =
                    Win.Branches[static_cast<uint32_t>(B->BranchId)];
                C.Events += Cell.Events;
                C.Taken += Cell.Taken;
                C.Mispredictions += Cell.Mispredictions;
              }
            }
            BT.addRow({std::to_string(P), std::to_string(B->BranchId),
                       std::to_string(C.Events),
                       std::to_string(C.Mispredictions),
                       formatPercent(TimeSeriesData::percent(
                           C.Mispredictions, C.Events))});
          }
        }
        printTable(BT, A);
      }
    }
  }

  if (!A.TimelineOut.empty()) {
    std::string Error;
    if (!emitText(A.TimelineOut, timelineDoc(A, PR).dump(2) + "\n", Error)) {
      std::fprintf(stderr, "bpcr: error: %s\n", Error.c_str());
      return 1;
    }
    std::printf("wrote timeline to %s\n", A.TimelineOut.c_str());
  }
  return writeMetrics(A, &PR) ? 0 : 1;
}

// -- profile ------------------------------------------------------------------

int cmdLint(const Args &A);

/// Wraps one searching command with the self-profiler armed, then renders
/// the collected profile and optionally writes the JSON profile
/// (--profile-out) and a collapsed-stack flamegraph (--flame-out).
int cmdProfile(const Args &A) {
  Profiler::global().setEnabled(true);

  Args Inner = A;
  Inner.Command = A.ProfileInner;
  // --format under profile selects the profile rendering; the wrapped
  // command runs with its default output format.
  Inner.Format = "table";
  int RC;
  if (Inner.Command == "replicate")
    RC = cmdReplicate(Inner);
  else if (Inner.Command == "report")
    RC = cmdReport(Inner);
  else if (Inner.Command == "sweep")
    RC = cmdSweep(Inner);
  else if (Inner.Command == "lint")
    RC = cmdLint(Inner);
  else
    RC = cmdTimeline(Inner);
  // Lint's exit code carries finding severity, not failure; keep profiling
  // output for it. Everything else treats nonzero as a hard error.
  if (RC != 0 && Inner.Command != "lint")
    return RC;

  Profiler::global().sampleRss("profile.end");
  ProfileData P = Profiler::global().collect();
  Registry &Obs = Registry::global();

  if (A.Format == "json")
    std::printf("%s\n", profileJson(P, &Obs).dump(2).c_str());
  else
    std::printf("\n%s", profileTable(P, &Obs).c_str());

  std::string Error;
  if (!A.ProfileOut.empty()) {
    if (!writeProfileText(A.ProfileOut, profileJson(P, &Obs).dump(2) + "\n",
                          "profile", Error)) {
      std::fprintf(stderr, "bpcr: error: %s\n", Error.c_str());
      return 1;
    }
    std::printf("wrote profile to %s\n", A.ProfileOut.c_str());
  }
  if (!A.FlameOut.empty()) {
    if (!writeProfileText(A.FlameOut, collapsedStacks(SpanTracer::global()),
                          "flamegraph", Error)) {
      std::fprintf(stderr, "bpcr: error: %s\n", Error.c_str());
      return 1;
    }
    std::printf("wrote flamegraph to %s\n", A.FlameOut.c_str());
  }
  return RC;
}

int cmdLint(const Args &A) {
  // Resolve the target: a workload name first, then a module file in the
  // textual serializer format.
  const Workload *W = nullptr;
  for (const Workload &Cand : allWorkloads())
    if (A.Target == Cand.Name)
      W = &Cand;
  Module M;
  std::string ArtifactUri;
  if (W) {
    M = W->Build(A.Seed);
    ArtifactUri = "workload:" + A.Target;
  } else {
    std::string Error;
    if (!readModuleFile(A.Target, M, Error)) {
      std::fprintf(stderr,
                   "bpcr: error: '%s' is neither a workload (try 'bpcr "
                   "list') nor a readable module file (%s)\n",
                   A.Target.c_str(), Error.c_str());
      return 2;
    }
    ArtifactUri = A.Target;
  }

  // Assign branch ids only when the module carries none at all, so ids
  // stored in a file — including deliberately broken ones — stay visible
  // to the branch-hygiene pass.
  bool AnyId = false;
  for (const Function &F : M.Functions)
    for (const BasicBlock &BB : F.Blocks)
      for (const Instruction &I : BB.Insts)
        AnyId |= I.isConditionalBranch() && I.BranchId != NoBranchId;
  if (!AnyId)
    M.assignBranchIds();

  // Enable the registry before the passes run so the sa.pass.<id> and
  // sa.diags.* gauges land in the --metrics report.
  if (!A.Metrics.empty())
    Registry::global().setEnabled(true);

  sa::PassManager PM;
  sa::addStandardPasses(PM);

  // --profile TRACE: admit the recorded branch trace through the
  // realizability verifier alongside the standard passes.
  if (!A.LintProfile.empty()) {
    // Columnar decode: run-length groups land directly in the packed
    // id/direction columns and the counts come from one pass over those,
    // so the verifier admits the trace without ever materializing an
    // event-of-structs copy.
    ColumnarTrace CT;
    std::string Error;
    if (!readTraceFileColumnar(A.LintProfile, CT, Error)) {
      std::fprintf(stderr, "bpcr: error: cannot read trace '%s': %s\n",
                   A.LintProfile.c_str(), Error.c_str());
      return 2;
    }
    sa::BranchProfileCounts P =
        sa::BranchProfileCounts::fromColumnar(M.conditionalBranchCount(), CT);
    PM.add(sa::createProfileVerifyPass(std::move(P)));
  }

  std::vector<sa::Diagnostic> Diags = PM.run(M, A.Jobs);

  std::vector<SarifRuleInfo> Rules;
  for (const auto &P : PM.passes())
    Rules.push_back({P->id(), P->description()});

  if (A.Replicate) {
    if (!W) {
      std::fprintf(stderr, "bpcr: error: '--replicate' needs a workload "
                           "target (a module file has no input trace)\n");
      return 2;
    }
    Module Traced;
    Trace T = traceWorkload(*W, A.Seed, Traced, A.Events);
    PipelineOptions Opts;
    Opts.Strategy.MaxStates = A.States;
    Opts.Strategy.NodeBudget = 50'000;
    Opts.Strategy.Jobs = A.Jobs;
    Opts.MaxSizeFactor = A.Budget;
    PipelineResult PR = replicateModule(Traced, T, Opts);
    Rules.push_back(
        {"replication-soundness",
         "the replicated module simulates its original: paired blocks run "
         "identical computations, out-edges project onto the original's, "
         "and every copy folds onto the branch it simulates"});
    for (sa::Diagnostic &D : PR.Soundness)
      Diags.push_back(std::move(D));
  }

  // --baseline FILE: an existing baseline suppresses the findings it lists
  // (stale entries surface as warnings); a missing one is recorded from the
  // current findings so the next run starts clean.
  if (!A.BaselinePath.empty()) {
    std::string Text, Error;
    if (readFile(A.BaselinePath, Text, Error)) {
      sa::LintBaseline BL;
      if (!sa::LintBaseline::parse(Text, BL, Error)) {
        std::fprintf(stderr, "bpcr: error: baseline '%s': %s\n",
                     A.BaselinePath.c_str(), Error.c_str());
        return 2;
      }
      Diags = BL.apply(std::move(Diags));
      Rules.push_back(
          {"lint-baseline",
           "baseline hygiene: a baseline entry that matches no current "
           "finding is stale — the underlying issue is fixed, so the line "
           "should be removed from the ledger"});
    } else {
      sa::LintBaseline BL = sa::LintBaseline::fromDiagnostics(Diags);
      std::string EmitError;
      if (!emitText(A.BaselinePath, BL.serialize(), EmitError)) {
        std::fprintf(stderr, "bpcr: error: %s\n", EmitError.c_str());
        return 2;
      }
      std::printf("recorded %zu baseline entr%s to %s\n", BL.Keys.size(),
                  BL.Keys.size() == 1 ? "y" : "ies",
                  A.BaselinePath.c_str());
      Diags.clear();
    }
  }

  std::string Out;
  if (A.Format == "json") {
    Out = diagnosticsJson(Diags).dump(2) + "\n";
  } else if (A.Format == "sarif") {
    Out = sarifLog(Diags, ArtifactUri, Rules).dump(2) + "\n";
  } else {
    for (const sa::Diagnostic &D : Diags)
      Out += D.render() + "\n";
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf),
                  "%s: %zu error(s), %zu warning(s), %zu note(s)\n",
                  A.Target.c_str(),
                  countSeverity(Diags, sa::Severity::Error),
                  countSeverity(Diags, sa::Severity::Warning),
                  countSeverity(Diags, sa::Severity::Note));
    Out += Buf;
  }
  std::string EmitError;
  if (!emitText(A.Output, Out, EmitError)) {
    std::fprintf(stderr, "bpcr: error: %s\n", EmitError.c_str());
    return 2;
  }
  if (!A.Output.empty())
    std::printf("wrote %s\n", A.Output.c_str());
  if (!writeMetrics(A, nullptr))
    return 2;

  const sa::Severity Threshold = A.FailOn == "warning"
                                     ? sa::Severity::Warning
                                     : sa::Severity::Error;
  return anyAtOrAbove(Diags, Threshold) ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  // Span tracing is orthogonal to the subcommands: the flag is spliced out
  // before command parsing and the timeline is written after the command
  // finishes, whatever it was.
  std::string TraceOut, TraceError;
  if (!extractTraceOutFlag(Argc, Argv, TraceOut, TraceError)) {
    std::fprintf(stderr, "bpcr: error: %s\n", TraceError.c_str());
    return usage();
  }

  Args A;
  if (!parseArgs(Argc, Argv, A))
    return usage();

  // Metrics collection stays off unless this invocation reports, so the
  // plain commands keep the zero-overhead path. explain and timeline need
  // it on: the attribution ledger and the windowed series are only filled
  // behind the enabled() guard.
  if (!A.Metrics.empty() || A.Command == "report" ||
      A.Command == "explain" || A.Command == "timeline" ||
      A.Command == "profile")
    Registry::global().setEnabled(true);

  int RC = 2;
  if (A.Command == "list")
    RC = cmdList();
  else if (A.Command == "dump")
    RC = cmdDump(A);
  else if (A.Command == "trace")
    RC = cmdTrace(A);
  else if (A.Command == "analyze")
    RC = cmdAnalyze(A);
  else if (A.Command == "replicate")
    RC = cmdReplicate(A);
  else if (A.Command == "report")
    RC = cmdReport(A);
  else if (A.Command == "sweep")
    RC = cmdSweep(A);
  else if (A.Command == "explain")
    RC = cmdExplain(A);
  else if (A.Command == "timeline")
    RC = cmdTimeline(A);
  else if (A.Command == "profile")
    RC = cmdProfile(A);
  else if (A.Command == "lint")
    RC = cmdLint(A);
  else if (A.Command == "compare")
    RC = cmdCompare(A);
  else if (A.Command == "trend")
    RC = cmdTrend(A);
  else
    return usage();

  if (!TraceOut.empty()) {
    int TraceRC = finishSpanTrace(TraceOut, "bpcr");
    if (RC == 0)
      RC = TraceRC;
  }
  return RC;
}
